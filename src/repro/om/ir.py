"""OM's symbolic intermediate representation.

A program is a linear collection of procedures, a procedure a collection of
basic blocks, and a block a collection of instructions — the exact
hierarchy ATOM exposes to instrumentation routines (paper Section 2).

Each entity carries an *action slot* (paper Section 4): an ordered list of
analysis-procedure calls to perform before or after the entity executes.
ATOM's ``AddCall*`` primitives append to these lists; the order of addition
is the order the calls are made in.

Instructions also carry their original address and any relocation that
patched them, which is what lets OM's code generator move code freely and
still re-resolve every address-bearing fixup ("no address fixups are
needed" — all insertion happens here, on the IR).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..isa.instruction import Instruction
from ..objfile.relocs import Relocation


@dataclass
class Action:
    """One analysis call to insert at an instrumentation point."""

    proc_name: str                 # analysis procedure (by name)
    args: tuple = ()               # lowered argument descriptors
    #: where relative to the entity: "before" or "after"
    when: str = "before"


@dataclass
class IRInst:
    """One instruction plus its annotations."""

    inst: Instruction
    #: Original virtual address (None for instructions OM/ATOM inserted).
    orig_pc: Optional[int] = None
    #: Branch target, symbolic so layout changes cannot break it:
    #: ("block", IRBlock) intra-procedure, ("symbol", name) for calls and
    #: cross-procedure transfers.  None for non-branch-format instructions.
    target: Optional[tuple] = None
    #: Relocations that patched this instruction (HI16/LO16/GOT16/...).
    relocs: list[Relocation] = field(default_factory=list)
    #: Action slots (filled by ATOM's AddCallInst).
    before: list[Action] = field(default_factory=list)
    after: list[Action] = field(default_factory=list)
    #: Name of the analysis procedure this instruction was inlined from
    #: (ATOM's O4 optimizer); the code generator turns runs of these into
    #: local marker symbols so disassembly stays debuggable.
    origin: Optional[str] = None
    #: Save-bracket tag for the cross-point coalescer: ``(site, role,
    #: key)`` where role is "pro" or "epi" and key identifies the
    #: bracket's frame size and save layout.  Only set on the
    #: save/restore instructions ATOM's lowerer generates.
    snip: Optional[tuple] = None

    def __repr__(self) -> str:
        pc = f"@{self.orig_pc:#x}" if self.orig_pc is not None else "@new"
        return f"IRInst({self.inst}{pc})"


@dataclass(eq=False)
class IRBlock:
    """A basic block: a maximal run of instructions entered at the top."""

    index: int
    insts: list[IRInst] = field(default_factory=list)
    succs: list["IRBlock"] = field(default_factory=list)
    preds: list["IRBlock"] = field(default_factory=list)
    proc: "IRProc" = None
    before: list[Action] = field(default_factory=list)
    after: list[Action] = field(default_factory=list)

    @property
    def first(self) -> IRInst:
        return self.insts[0]

    @property
    def last(self) -> IRInst:
        return self.insts[-1]

    @property
    def orig_pc(self) -> Optional[int]:
        return self.insts[0].orig_pc if self.insts else None

    def __repr__(self) -> str:
        pc = self.orig_pc
        at = f"@{pc:#x}" if pc is not None else ""
        return f"IRBlock(#{self.index}{at}, {len(self.insts)} insts)"


@dataclass(eq=False)
class IRProc:
    """A procedure: an ordered list of basic blocks."""

    name: str
    blocks: list[IRBlock] = field(default_factory=list)
    orig_addr: int = 0
    is_global: bool = True
    #: frame metadata from .frame directives (None when unavailable,
    #: e.g. hand-crafted assembly)
    frame_size: Optional[int] = None
    frame_outgoing: Optional[int] = None
    before: list[Action] = field(default_factory=list)
    after: list[Action] = field(default_factory=list)

    @property
    def entry(self) -> IRBlock:
        return self.blocks[0]

    def instructions(self):
        for block in self.blocks:
            yield from block.insts

    def inst_count(self) -> int:
        return sum(len(b.insts) for b in self.blocks)

    def __repr__(self) -> str:
        return f"IRProc({self.name}, {len(self.blocks)} blocks)"


@dataclass
class IRProgram:
    """The whole program in symbolic form."""

    procs: list[IRProc] = field(default_factory=list)
    module: object = None          # the source Module
    before: list[Action] = field(default_factory=list)   # ProgramBefore
    after: list[Action] = field(default_factory=list)    # ProgramAfter
    #: local text labels that must track their instruction (name -> IRInst)
    text_labels: dict[str, IRInst] = field(default_factory=dict)
    #: labels whose code was deleted (unreachable-procedure elimination)
    removed_labels: set[str] = field(default_factory=set)

    def proc(self, name: str) -> IRProc:
        for p in self.procs:
            if p.name == name:
                return p
        raise KeyError(f"no procedure named {name!r}")

    def find_proc(self, name: str) -> Optional[IRProc]:
        for p in self.procs:
            if p.name == name:
                return p
        return None

    def blocks(self):
        for proc in self.procs:
            yield from proc.blocks

    def instructions(self):
        for proc in self.procs:
            yield from proc.instructions()

    def inst_count(self) -> int:
        return sum(p.inst_count() for p in self.procs)
