"""Link-time optimizations over OM IR.

The paper builds ATOM on OM, a system whose purpose is link-time
*optimization*; two of its published passes are reproduced here:

* **unreachable-procedure elimination** (Srivastava, LOPLAS 1992 —
  reference [13]): procedures that can never be reached from the entry
  point and never have their address taken are deleted from the IR, so
  the code generator simply does not place them;
* **address-calculation optimization** (Srivastava & Wall, PLDI 1994 —
  reference [12]): redundant literal-table loads (``ldq rX,
  %got(sym)(gp)``) are replaced by register copies when another register
  is already known to hold the same address within the block.
"""

from __future__ import annotations

from ..isa import opcodes, registers as R
from ..obs import TRACE
from ..objfile.relocs import RelocType
from ..objfile.sections import TEXT
from .dataflow import call_graph
from .ir import IRProgram


def address_taken_procs(program: IRProgram) -> set[str]:
    """Procedures whose address escapes via any retained relocation."""
    module = program.module
    names = {p.name for p in program.procs}
    bounds = {}
    for proc in program.procs:
        size = 4 * proc.inst_count()
        bounds[proc.name] = (proc.orig_addr, proc.orig_addr + size)
    taken: set[str] = set()
    for rel in module.relocs:
        if rel.symbol in names:
            sym = module.symtab.get(rel.symbol)
            if sym is not None and sym.section == TEXT:
                taken.add(rel.symbol)
    return taken


def reachable_procs(program: IRProgram, roots: list[str]) -> set[str]:
    """Procedures reachable from the roots through direct calls."""
    graph = call_graph(program)
    seen: set[str] = set()
    work = [r for r in roots if program.find_proc(r) is not None]
    indirect_anywhere = False
    while work:
        name = work.pop()
        if name in seen:
            continue
        seen.add(name)
        for callee in graph.get(name, ()):
            if callee is None:
                indirect_anywhere = True
            elif callee not in seen:
                work.append(callee)
    if indirect_anywhere:
        # Any indirect call may reach any address-taken procedure (and
        # everything those reach).
        for name in address_taken_procs(program):
            if name not in seen:
                work.append(name)
        while work:
            name = work.pop()
            if name in seen:
                continue
            seen.add(name)
            for callee in graph.get(name, ()):
                if callee is not None and callee not in seen:
                    work.append(callee)
    return seen


def eliminate_unreachable(program: IRProgram,
                          roots: list[str] | None = None) -> list[str]:
    """Drop unreachable, never-address-taken procedures; returns their names.

    Default roots: the procedure containing the entry point, plus every
    global procedure when no entry is recorded (a library unit).
    """
    with TRACE.span("om.opt.unreachable", "om") as sp:
        removed = _eliminate_unreachable(program, roots)
        sp.add(removed=len(removed))
        TRACE.count("om.procs_removed", len(removed))
        return removed


def _eliminate_unreachable(program: IRProgram,
                           roots: list[str] | None) -> list[str]:
    module = program.module
    if roots is None:
        roots = []
        if module.entry:
            for proc in program.procs:
                if proc.orig_addr == module.entry:
                    roots.append(proc.name)
        if not roots:
            roots = [p.name for p in program.procs if p.is_global]
    keep = reachable_procs(program, roots)
    keep |= address_taken_procs(program)
    removed = [p.name for p in program.procs if p.name not in keep]
    if removed:
        gone = set(removed)
        program.procs = [p for p in program.procs if p.name not in gone]
        # Drop text labels that lived inside removed procedures.
        placed = {id(ir) for p in program.procs for ir in p.instructions()}
        dropped = {name for name, ir in program.text_labels.items()
                   if id(ir) not in placed}
        program.removed_labels |= dropped
        program.text_labels = {
            name: ir for name, ir in program.text_labels.items()
            if name not in dropped}
    return removed


# ---- address-calculation optimization (reference [12]) -----------------------

def optimize_got_loads(program: IRProgram) -> int:
    """Eliminate redundant literal-table loads within basic blocks.

    MLC (like most compilers) reloads a global's address from the literal
    table every time it is referenced.  Within a basic block the second
    and later loads of the same slot are pure repeats as long as the
    register holding the first result is intact, so they become register
    copies — the local case of OM's address-calculation optimization.

    Returns the number of loads rewritten.
    """
    with TRACE.span("om.opt.got_loads", "om") as sp:
        rewritten = _optimize_got_loads(program)
        sp.add(rewritten=rewritten)
        TRACE.count("om.got_loads_removed", rewritten)
        return rewritten


def _optimize_got_loads(program: IRProgram) -> int:
    rewritten = 0
    for proc in program.procs:
        # OUT-state per block so facts survive along forward
        # single-predecessor edges (the if-skip / fall-through pattern).
        out_state: dict[int, dict] = {}
        for block in proc.blocks:
            # register -> (symbol, addend) whose slot value it holds
            holds: dict[int, tuple[str, int]] = {}
            if len(block.preds) == 1 and id(block.preds[0]) in out_state:
                holds = dict(out_state[id(block.preds[0])])
            for ir in block.insts:
                inst = ir.inst
                got = _got_key(ir)
                if got is not None:
                    source = _register_holding(holds, got)
                    if source is not None and source != inst.ra:
                        ir.inst = inst.copy(op=opcodes.BIS, ra=source,
                                            rb=R.ZERO, rc=inst.ra,
                                            disp=0)
                        ir.relocs = [r for r in ir.relocs
                                     if r.type is not RelocType.GOT16]
                        holds.pop(inst.ra, None)
                        holds[inst.ra] = got
                        rewritten += 1
                        continue
                # Kill facts clobbered by this instruction.
                defs = inst.defs()
                if inst.is_call():
                    # Calls clobber every caller-saved register.
                    for reg in list(holds):
                        if reg in R.CALLER_SAVED:
                            del holds[reg]
                for reg in defs:
                    holds.pop(reg, None)
                if R.GP in defs:
                    holds.clear()       # new gp: all slot facts invalid
                if got is not None:
                    holds[inst.ra] = got
            out_state[id(block)] = holds
    return rewritten


def _got_key(ir) -> tuple[str, int] | None:
    """The (symbol, addend) of a GOT-relocated ldq, if this is one."""
    inst = ir.inst
    if inst.op is not opcodes.LDQ or inst.rb != R.GP:
        return None
    for rel in ir.relocs:
        if rel.type is RelocType.GOT16:
            return (rel.symbol, rel.addend)
    return None


def _register_holding(holds: dict, key: tuple) -> int | None:
    for reg, held in holds.items():
        if held == key:
            return reg
    return None


def optimize_address_calculation(program: IRProgram) -> int:
    """Replace literal-table loads with direct gp-relative address
    computation where the datum is within reach (reference [12]).

    ``ldq rX, %got(sym)(gp)`` loads sym's address from the literal table —
    a memory access.  When sym itself lies within the signed 16-bit window
    around gp, the address can be *computed* instead: ``lda rX,
    disp(gp)``.  Only data-segment symbols qualify: their addresses are
    immutable (ATOM never moves program data), so no relocation needs to
    survive on the rewritten instruction.

    Returns the number of loads rewritten.  Run :func:`optimize_got_loads`
    afterwards if block-local redundancy should also be cleaned.
    """
    with TRACE.span("om.opt.addr_calc", "om") as sp:
        rewritten = _optimize_address_calculation(program)
        sp.add(rewritten=rewritten)
        TRACE.count("om.addr_calcs_rewritten", rewritten)
        return rewritten


def _optimize_address_calculation(program: IRProgram) -> int:
    module = program.module
    gp = module.gp_value
    rewritten = 0
    for proc in program.procs:
        for block in proc.blocks:
            for ir in block.insts:
                key = _got_key(ir)
                if key is None:
                    continue
                symbol, addend = key
                sym = module.symtab.get(symbol)
                if sym is None or not sym.defined or sym.is_abs:
                    continue
                if sym.section in (None, TEXT):
                    continue        # text moves under ATOM; keep the slot
                target = sym.value + addend
                disp = target - gp
                if not -(1 << 15) <= disp < (1 << 15):
                    continue
                ir.inst = ir.inst.copy(op=opcodes.LDA, disp=disp)
                ir.relocs = [r for r in ir.relocs
                             if r.type is not RelocType.GOT16]
                rewritten += 1
    return rewritten
