"""Link-time optimizations over OM IR.

The paper builds ATOM on OM, a system whose purpose is link-time
*optimization*; two of its published passes are reproduced here:

* **unreachable-procedure elimination** (Srivastava, LOPLAS 1992 —
  reference [13]): procedures that can never be reached from the entry
  point and never have their address taken are deleted from the IR, so
  the code generator simply does not place them;
* **address-calculation optimization** (Srivastava & Wall, PLDI 1994 —
  reference [12]): redundant literal-table loads (``ldq rX,
  %got(sym)(gp)``) are replaced by register copies when another register
  is already known to hold the same address within the block.
"""

from __future__ import annotations

from ..isa import opcodes, registers as R
from ..isa.instruction import Instruction
from ..isa.opcodes import InstClass
from ..obs import TRACE
from ..objfile.relocs import RelocType
from ..objfile.sections import TEXT
from .dataflow import call_graph
from .ir import IRInst, IRProgram


def address_taken_procs(program: IRProgram) -> set[str]:
    """Procedures whose address escapes via any retained relocation."""
    module = program.module
    names = {p.name for p in program.procs}
    bounds = {}
    for proc in program.procs:
        size = 4 * proc.inst_count()
        bounds[proc.name] = (proc.orig_addr, proc.orig_addr + size)
    taken: set[str] = set()
    for rel in module.relocs:
        if rel.symbol in names:
            sym = module.symtab.get(rel.symbol)
            if sym is not None and sym.section == TEXT:
                taken.add(rel.symbol)
    return taken


def reachable_procs(program: IRProgram, roots: list[str]) -> set[str]:
    """Procedures reachable from the roots through direct calls."""
    graph = call_graph(program)
    seen: set[str] = set()
    work = [r for r in roots if program.find_proc(r) is not None]
    indirect_anywhere = False
    while work:
        name = work.pop()
        if name in seen:
            continue
        seen.add(name)
        for callee in graph.get(name, ()):
            if callee is None:
                indirect_anywhere = True
            elif callee not in seen:
                work.append(callee)
    if indirect_anywhere:
        # Any indirect call may reach any address-taken procedure (and
        # everything those reach).
        for name in address_taken_procs(program):
            if name not in seen:
                work.append(name)
        while work:
            name = work.pop()
            if name in seen:
                continue
            seen.add(name)
            for callee in graph.get(name, ()):
                if callee is not None and callee not in seen:
                    work.append(callee)
    return seen


def eliminate_unreachable(program: IRProgram,
                          roots: list[str] | None = None) -> list[str]:
    """Drop unreachable, never-address-taken procedures; returns their names.

    Default roots: the procedure containing the entry point, plus every
    global procedure when no entry is recorded (a library unit).
    """
    with TRACE.span("om.opt.unreachable", "om") as sp:
        removed = _eliminate_unreachable(program, roots)
        sp.add(removed=len(removed))
        TRACE.count("om.procs_removed", len(removed))
        return removed


def _eliminate_unreachable(program: IRProgram,
                           roots: list[str] | None) -> list[str]:
    module = program.module
    if roots is None:
        roots = []
        if module.entry:
            for proc in program.procs:
                if proc.orig_addr == module.entry:
                    roots.append(proc.name)
        if not roots:
            roots = [p.name for p in program.procs if p.is_global]
    keep = reachable_procs(program, roots)
    keep |= address_taken_procs(program)
    removed = [p.name for p in program.procs if p.name not in keep]
    if removed:
        gone = set(removed)
        program.procs = [p for p in program.procs if p.name not in gone]
        # Drop text labels that lived inside removed procedures.
        placed = {id(ir) for p in program.procs for ir in p.instructions()}
        dropped = {name for name, ir in program.text_labels.items()
                   if id(ir) not in placed}
        program.removed_labels |= dropped
        program.text_labels = {
            name: ir for name, ir in program.text_labels.items()
            if name not in dropped}
    return removed


# ---- address-calculation optimization (reference [12]) -----------------------

def optimize_got_loads(program: IRProgram) -> int:
    """Eliminate redundant literal-table loads within basic blocks.

    MLC (like most compilers) reloads a global's address from the literal
    table every time it is referenced.  Within a basic block the second
    and later loads of the same slot are pure repeats as long as the
    register holding the first result is intact, so they become register
    copies — the local case of OM's address-calculation optimization.

    Returns the number of loads rewritten.
    """
    with TRACE.span("om.opt.got_loads", "om") as sp:
        rewritten = _optimize_got_loads(program)
        sp.add(rewritten=rewritten)
        TRACE.count("om.got_loads_removed", rewritten)
        return rewritten


def _optimize_got_loads(program: IRProgram) -> int:
    rewritten = 0
    for proc in program.procs:
        # OUT-state per block so facts survive along forward
        # single-predecessor edges (the if-skip / fall-through pattern).
        out_state: dict[int, dict] = {}
        for block in proc.blocks:
            # register -> (symbol, addend) whose slot value it holds
            holds: dict[int, tuple[str, int]] = {}
            if len(block.preds) == 1 and id(block.preds[0]) in out_state:
                holds = dict(out_state[id(block.preds[0])])
            for ir in block.insts:
                inst = ir.inst
                got = _got_key(ir)
                if got is not None:
                    source = _register_holding(holds, got)
                    if source is not None and source != inst.ra:
                        ir.inst = inst.copy(op=opcodes.BIS, ra=source,
                                            rb=R.ZERO, rc=inst.ra,
                                            disp=0)
                        ir.relocs = [r for r in ir.relocs
                                     if r.type is not RelocType.GOT16]
                        holds.pop(inst.ra, None)
                        holds[inst.ra] = got
                        rewritten += 1
                        continue
                # Kill facts clobbered by this instruction.
                defs = inst.defs()
                if inst.is_call():
                    # Calls clobber every caller-saved register.
                    for reg in list(holds):
                        if reg in R.CALLER_SAVED:
                            del holds[reg]
                for reg in defs:
                    holds.pop(reg, None)
                if R.GP in defs:
                    holds.clear()       # new gp: all slot facts invalid
                if got is not None:
                    holds[inst.ra] = got
            out_state[id(block)] = holds
    return rewritten


def _got_key(ir) -> tuple[str, int] | None:
    """The (symbol, addend) of a GOT-relocated ldq, if this is one."""
    inst = ir.inst
    if inst.op is not opcodes.LDQ or inst.rb != R.GP:
        return None
    for rel in ir.relocs:
        if rel.type is RelocType.GOT16:
            return (rel.symbol, rel.addend)
    return None


def _register_holding(holds: dict, key: tuple) -> int | None:
    for reg, held in holds.items():
        if held == key:
            return reg
    return None


def optimize_address_calculation(program: IRProgram) -> int:
    """Replace literal-table loads with direct gp-relative address
    computation where the datum is within reach (reference [12]).

    ``ldq rX, %got(sym)(gp)`` loads sym's address from the literal table —
    a memory access.  When sym itself lies within the signed 16-bit window
    around gp, the address can be *computed* instead: ``lda rX,
    disp(gp)``.  Only data-segment symbols qualify: their addresses are
    immutable (ATOM never moves program data), so no relocation needs to
    survive on the rewritten instruction.

    Returns the number of loads rewritten.  Run :func:`optimize_got_loads`
    afterwards if block-local redundancy should also be cleaned.
    """
    with TRACE.span("om.opt.addr_calc", "om") as sp:
        rewritten = _optimize_address_calculation(program)
        sp.add(rewritten=rewritten)
        TRACE.count("om.addr_calcs_rewritten", rewritten)
        return rewritten


def _optimize_address_calculation(program: IRProgram) -> int:
    module = program.module
    gp = module.gp_value
    rewritten = 0
    for proc in program.procs:
        for block in proc.blocks:
            for ir in block.insts:
                key = _got_key(ir)
                if key is None:
                    continue
                symbol, addend = key
                sym = module.symtab.get(symbol)
                if sym is None or not sym.defined or sym.is_abs:
                    continue
                if sym.section in (None, TEXT):
                    continue        # text moves under ATOM; keep the slot
                target = sym.value + addend
                disp = target - gp
                if not -(1 << 15) <= disp < (1 << 15):
                    continue
                ir.inst = ir.inst.copy(op=opcodes.LDA, disp=disp)
                ir.relocs = [r for r in ir.relocs
                             if r.type is not RelocType.GOT16]
                rewritten += 1
    return rewritten


# ---- straight-line peephole (O4 inline bodies) --------------------------------

def _copy_source(inst) -> int | None:
    """src register when ``inst`` is a plain copy (``bis src, zero, dst``
    or ``bis zero, src, dst``), else None."""
    if inst.op is not opcodes.BIS or inst.is_lit:
        return None
    if inst.rb == R.ZERO and inst.ra not in (R.ZERO, inst.rc):
        return inst.ra
    if inst.ra == R.ZERO and inst.rb not in (R.ZERO, inst.rc):
        return inst.rb
    return None


def _rewrite_uses(inst, env: dict[int, int]):
    """Return ``inst`` with used register fields substituted through
    ``env``, or the original instruction when nothing applies."""
    cls = inst.op.inst_class
    changes = {}
    if cls is InstClass.OPERATE:
        if inst.ra in env:
            changes["ra"] = env[inst.ra]
        if not inst.is_lit and inst.rb in env:
            changes["rb"] = env[inst.rb]
    elif cls in (InstClass.LOAD, InstClass.LOAD_ADDRESS):
        if inst.rb in env:
            changes["rb"] = env[inst.rb]
    elif cls is InstClass.STORE:
        if inst.ra in env:
            changes["ra"] = env[inst.ra]
        if inst.rb in env:
            changes["rb"] = env[inst.rb]
    return inst.copy(**changes) if changes else inst


def peephole_straightline(insts: list[IRInst],
                          live_out: frozenset[int] = frozenset()
                          ) -> tuple[list[IRInst], int]:
    """Copy-propagate and dead-code-eliminate a straight-line run.

    Run on O4 inline bodies before their save set is computed: argument
    shuffles (``bis aX, zero, tY``) become direct uses of the source and
    the dead moves they leave behind are dropped, which both shortens the
    spliced sequence and shrinks its clobber set.  Only side-effect-free
    register computes (operate / lda / ldah) are ever removed; stores,
    loads, and control transfers stay put.  Returns the rewritten list
    and the number of instructions removed.
    """
    # Forward copy propagation.
    env: dict[int, int] = {}          # dst -> reg currently holding the value
    for ir in insts:
        ir.inst = _rewrite_uses(ir.inst, env)
        inst = ir.inst
        defs = inst.defs()
        for dst in [d for d, s in env.items() if d in defs or s in defs]:
            del env[dst]
        src = _copy_source(inst)
        if src is not None and inst.rc != R.ZERO:
            env[inst.rc] = src

    # Backward dead-code elimination.
    removable = (InstClass.OPERATE, InstClass.LOAD_ADDRESS)
    live = set(live_out)
    kept: list[IRInst] = []
    removed = 0
    for ir in reversed(insts):
        inst = ir.inst
        defs = inst.defs() - {R.ZERO}
        if inst.op.inst_class in removable and defs \
                and defs.isdisjoint(live):
            removed += 1
            continue
        live -= defs
        live |= inst.uses()
        kept.append(ir)
    kept.reverse()
    TRACE.count("om.peephole_removed", removed)
    return kept, removed


# ---- constant folding / address fusion (O4) -----------------------------------

_MASK64 = (1 << 64) - 1

#: Opcodes the folder can evaluate when every operand is known.
_EVAL = {
    opcodes.ADDQ: lambda a, b: a + b,
    opcodes.SUBQ: lambda a, b: a - b,
    opcodes.MULQ: lambda a, b: a * b,
    opcodes.SLL: lambda a, b: a << (b & 63),
    opcodes.SRL: lambda a, b: a >> (b & 63),
    opcodes.AND: lambda a, b: a & b,
    opcodes.BIS: lambda a, b: a | b,
    opcodes.XOR: lambda a, b: a ^ b,
}

#: Operate opcodes whose rb operand may be folded into the 8-bit literal
#: slot (cmov excluded: it also reads rc).
_LIT_FOLDABLE = frozenset(_EVAL) | {
    opcodes.BIC, opcodes.ORNOT, opcodes.SRA,
    opcodes.CMPEQ, opcodes.CMPLT, opcodes.CMPLE,
    opcodes.CMPULT, opcodes.CMPULE,
}


def _fits16(value: int) -> bool:
    return -(1 << 15) <= value < (1 << 15)


def _signed64(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >> 63 else value


def constfold_straightline(insts: list[IRInst]) -> int:
    """Forward constant folding over a straight-line run.

    Registers whose exact value is established by the run itself (``lda``/
    ``ldah`` chains over zero, then any :data:`_EVAL` arithmetic over
    known values) are tracked; instructions over known values collapse to
    cheaper forms — a materializing ``lda``, a reg+const ``lda``, or the
    operate literal slot.  ATOM's O4 point specialization uses this to
    melt instrumentation-time constant arguments into the inlined
    analysis body.  Returns the number of instructions rewritten.
    """
    known: dict[int, int] = {}

    def val(reg: int) -> int | None:
        return 0 if reg == R.ZERO else known.get(reg)

    rewritten = 0
    for ir in insts:
        inst = ir.inst
        cls = inst.op.inst_class
        if ir.relocs or ir.snip is not None:
            for reg in inst.defs():
                known.pop(reg, None)
            continue
        if cls is InstClass.LOAD_ADDRESS:
            base = val(inst.rb)
            shift = 16 if inst.op is opcodes.LDAH else 0
            if base is not None:
                known[inst.ra] = (base + (inst.disp << shift)) & _MASK64
            else:
                known.pop(inst.ra, None)
            continue
        if cls is InstClass.OPERATE and inst.op.mnemonic not in (
                "cmoveq", "cmovne"):
            a = val(inst.ra)
            b = inst.lit if inst.is_lit else val(inst.rb)
            out = None
            if a is not None and b is not None and inst.op in _EVAL:
                out = _EVAL[inst.op](a, b) & _MASK64
                signed = _signed64(out)
                if _fits16(signed) and not (
                        inst.op is opcodes.BIS and inst.ra == R.ZERO
                        and inst.is_lit):
                    ir.inst = Instruction(opcodes.LDA, ra=inst.rc,
                                          rb=R.ZERO, disp=signed)
                    rewritten += 1
            elif inst.op is opcodes.ADDQ and b is not None \
                    and _fits16(_signed64(b)):
                ir.inst = Instruction(opcodes.LDA, ra=inst.rc, rb=inst.ra,
                                      disp=_signed64(b))
                rewritten += 1
            elif inst.op is opcodes.ADDQ and a is not None \
                    and not inst.is_lit and _fits16(_signed64(a)):
                ir.inst = Instruction(opcodes.LDA, ra=inst.rc, rb=inst.rb,
                                      disp=_signed64(a))
                rewritten += 1
            elif inst.op is opcodes.SUBQ and b is not None \
                    and _fits16(-_signed64(b)):
                ir.inst = Instruction(opcodes.LDA, ra=inst.rc, rb=inst.ra,
                                      disp=-_signed64(b))
                rewritten += 1
            elif b is not None and 0 <= b <= 255 and not inst.is_lit \
                    and inst.op in _LIT_FOLDABLE:
                ir.inst = inst.copy(is_lit=True, lit=b, rb=R.ZERO)
                rewritten += 1
            if out is not None:
                known[inst.rc] = out
            else:
                known.pop(inst.rc, None)
            known.pop(R.ZERO, None)
            continue
        for reg in inst.defs():
            known.pop(reg, None)
    TRACE.count("om.consts_folded", rewritten)
    return rewritten


def fuse_lda_bases(insts: list[IRInst]) -> int:
    """Fold ``lda rX, d(rB)`` into the displacement of downstream memory
    references based on rX.

    Legal when, before rX is redefined, every use of rX is as the base of
    a memory instruction whose combined displacement still fits 16 bits
    signed, rB is not redefined over the same span, and neither the
    ``lda`` nor any target instruction carries a relocation or a
    save-bracket tag.  The address arithmetic the O4 constant folder
    leaves behind (``counts + 8*n``) disappears into the loads and stores
    themselves.  Returns the number of ``lda`` instructions fused away.
    """
    fused = 0
    i = 0
    while i < len(insts):
        if _try_fuse(insts, i):
            fused += 1
        else:
            i += 1
    TRACE.count("om.lda_fused", fused)
    return fused


def _try_fuse(insts: list[IRInst], i: int) -> bool:
    inst = insts[i].inst
    if inst.op is not opcodes.LDA or insts[i].relocs \
            or insts[i].snip is not None or inst.ra == R.ZERO:
        return False
    rx, rb, d = inst.ra, inst.rb, inst.disp
    targets: list[int] = []
    for j in range(i + 1, len(insts)):
        nxt = insts[j].inst
        if nxt.ends_block():
            return False
        uses = nxt.uses()
        if rx in uses:
            # A target carrying a relocation (LO16 on the displacement)
            # or a bracket tag must not have its encoded disp rewritten:
            # the relocation would later be applied on top of the fused
            # displacement and corrupt it.
            if not nxt.is_memory_ref() or nxt.rb != rx \
                    or (nxt.is_store() and nxt.ra == rx) \
                    or insts[j].relocs or insts[j].snip is not None \
                    or not _fits16(d + nxt.disp):
                return False
            targets.append(j)
        if rx in nxt.defs():
            break
        if rb != rx and rb in nxt.defs() and rb != R.ZERO:
            # Base changes while rX may still be used later.
            return False
    if not targets:
        return False
    for j in targets:
        insts[j].inst = insts[j].inst.copy(rb=rb, disp=insts[j].inst.disp
                                           + d)
    del insts[i]
    return True


# ---- cross-point save coalescing (O4) ----------------------------------------

def coalesce_snippets(program: IRProgram, max_gap: int = 2) -> int:
    """Merge save/restore brackets of consecutive snippets in a block.

    ATOM's lowerer tags the prologue (``lda sp,-F`` + saves) and epilogue
    (restores + ``lda sp,+F``) of every snippet it generates (the
    ``IRInst.snip`` field).  When one snippet's epilogue is followed —
    across at most ``max_gap`` application instructions — by another
    snippet's prologue with the *identical* frame and save layout, the
    pair cancels: dropping both leaves one save-once/restore-once bracket
    around both payloads.

    Legality of the application instructions caught inside the widened
    bracket (they now run with sp displaced and saved registers still
    holding snippet values):

    * no control transfer, call, or system call;
    * sp neither read nor written (the frame displacement would leak);
    * no read of a bracket-saved register (its application value lives in
      a slot, not the register) and no write to one (the final restore
      would wipe it).

    Registers outside the save set are consistent by construction: a
    snippet's payload only writes registers in its save set, so gap
    instructions observe exactly what they would have between separate
    brackets.  Returns the number of brackets merged.
    """
    with TRACE.span("om.opt.coalesce", "om") as sp:
        merged = sum(_coalesce_block(block, max_gap)
                     for proc in program.procs
                     for block in proc.blocks)
        sp.add(merged=merged)
        TRACE.count("om.brackets_merged", merged)
        return merged


def _gap_legal(ir: IRInst, saved: frozenset[int]) -> bool:
    inst = ir.inst
    if inst.ends_block() or inst.is_call() or inst.is_syscall():
        return False
    uses, defs = inst.uses(), inst.defs()
    if R.SP in uses or R.SP in defs:
        return False
    return uses.isdisjoint(saved) and defs.isdisjoint(saved)


def _coalesce_block(block, max_gap: int) -> int:
    insts = block.insts
    drop: set[int] = set()
    merged = 0
    i = 0
    while i < len(insts):
        tag = insts[i].snip
        if tag is None or tag[1] != "epi":
            i += 1
            continue
        site, _, key = tag
        # The epilogue run of this snippet.
        j = i
        while j < len(insts) and insts[j].snip == tag:
            j += 1
        # At most max_gap legal application instructions in between.
        # key = (frame, stack_args, ((reg, slot), ...))
        saved = frozenset(reg for reg, _ in key[2])
        k = j
        while k < len(insts) and k - j <= max_gap \
                and insts[k].snip is None:
            if not _gap_legal(insts[k], saved):
                break
            k += 1
        nxt = insts[k].snip if k < len(insts) else None
        if k - j > max_gap or nxt is None or nxt[1] != "pro" \
                or nxt[0] == site or nxt[2] != key:
            i = j
            continue
        # Delete this epilogue and the matching prologue run.
        drop.update(range(i, j))
        m = k
        while m < len(insts) and insts[m].snip == nxt:
            drop.add(m)
            m += 1
        merged += 1
        i = m
    if drop:
        block.insts = [ir for n, ir in enumerate(insts) if n not in drop]
    return merged

# ---- O4 point specialization --------------------------------------------------

def convert_got_to_gprel(insts: list[IRInst], module) -> int:
    """Template-time address-calculation optimization for inline bodies.

    Same rewrite as :func:`optimize_address_calculation`, applied to the
    instruction list of an O4 inline template against the *analysis*
    module: ``ldq rX, %got(sym)(gp)`` becomes ``lda rX, (sym-gp)(gp)``
    when sym's data lies within the 16-bit window around the analysis gp.
    The encoded displacement is relocation-free: every analysis data
    segment shifts by one common delta when the unit is rebased (the
    instrumenter verifies this), so sym-gp is invariant.

    GOT16 relocations on loads that stay out of reach are *dropped*, not
    kept: the encoded slot displacement is gp-relative and therefore
    equally invariant, and the literal slot itself is patched through the
    original routine, which remains in the analysis unit.  Returns the
    number of loads rewritten.
    """
    gp = module.gp_value
    rewritten = 0
    for ir in insts:
        key = _got_key(ir)
        if key is None:
            continue
        symbol, addend = key
        sym = module.symtab.get(symbol)
        ir.relocs = [r for r in ir.relocs
                     if r.type is not RelocType.GOT16]
        if sym is None or not sym.defined or sym.is_abs \
                or sym.section in (None, TEXT):
            continue
        disp = sym.value + addend - gp
        if not _fits16(disp):
            continue
        ir.inst = ir.inst.copy(op=opcodes.LDA, disp=disp)
        rewritten += 1
    TRACE.count("om.inline_gprel", rewritten)
    return rewritten


def specialize_point(insts: list[IRInst],
                     live: frozenset[int]) -> list[IRInst]:
    """Specialize one fully inlined snippet to its instrumentation point.

    Run at O4 on points whose every action was inlined (no call, so the
    whole snippet is straight-line and its effects are fully visible):

    1. instrumentation-time constant arguments fold into the spliced
       body (:func:`constfold_straightline`);
    2. leftover address arithmetic folds into memory displacements
       (:func:`fuse_lda_bases`);
    3. computes whose results neither the remaining snippet nor the
       live-out application registers read are dropped;
    4. the save bracket is re-derived from the instructions that
       actually remain — pairs for registers the specialized payload no
       longer touches are deleted, and the frame itself goes when
       nothing references sp.  Bracket tags are re-keyed so the
       cross-point coalescer still sees accurate save sets.

    Memory operations are never added, removed, or reordered, so the
    analysis data the snippet computes is bit-identical to O0-O3.
    """
    constfold_straightline(insts)
    fuse_lda_bases(insts)
    _dce_point(insts, live)
    _shrink_bracket(insts)
    _regsave_bracket(insts, live)
    return insts


def _dce_point(insts: list[IRInst], live: frozenset[int]) -> int:
    removable = (InstClass.OPERATE, InstClass.LOAD_ADDRESS)
    live_now = set(live) | {R.SP, R.GP, R.RA}
    kept: list[IRInst] = []
    removed = 0
    for ir in reversed(insts):
        inst = ir.inst
        defs = inst.defs() - {R.ZERO}
        if ir.snip is None and inst.op.inst_class in removable \
                and defs and defs.isdisjoint(live_now):
            removed += 1
            continue
        live_now -= defs
        live_now |= inst.uses()
        kept.append(ir)
    kept.reverse()
    insts[:] = kept
    TRACE.count("om.point_dce_removed", removed)
    return removed


def _shrink_bracket(insts: list[IRInst]) -> int:
    pro = [n for n, ir in enumerate(insts)
           if ir.snip is not None and ir.snip[1] == "pro"]
    epi = [n for n, ir in enumerate(insts)
           if ir.snip is not None and ir.snip[1] == "epi"]
    if not pro or not epi:
        return 0
    # saves is the bracket's (register, slot displacement) layout.
    frame, stack_args, saves = insts[pro[0]].snip[2]
    used_regs: set[int] = set()
    used_disps: set[int] = set()
    sp_payload = False
    for ir in insts:
        if ir.snip is not None:
            continue
        inst = ir.inst
        touched = inst.uses() | inst.defs()
        used_regs |= touched
        if R.SP in touched:
            sp_payload = True
            if inst.is_memory_ref() \
                    or inst.op.inst_class is InstClass.LOAD_ADDRESS:
                if inst.rb == R.SP:
                    used_disps.add(inst.disp)
    drop: set[int] = set()
    remaining: list[tuple[int, int]] = []
    for reg, disp in saves:
        if reg in used_regs or disp in used_disps:
            # Surviving saves keep their original slots, so the re-key
            # below must carry the (reg, slot) pairs — two shrunk
            # brackets saving the same registers in different slots are
            # not interchangeable.
            remaining.append((reg, disp))
            continue
        for n in pro + epi:
            inst = insts[n].inst
            if inst.ra == reg and inst.rb == R.SP and inst.disp == disp \
                    and inst.op in (opcodes.STQ, opcodes.LDQ):
                drop.add(n)
    if not remaining and not sp_payload and stack_args == 0:
        # Nothing left needs the frame at all.
        for n in (pro[0], epi[-1]):
            inst = insts[n].inst
            if inst.op is opcodes.LDA and inst.ra == R.SP:
                drop.add(n)
        new_key = None
    else:
        new_key = (frame, stack_args, tuple(remaining))
    dropped = len(saves) - len(remaining)
    if drop:
        insts[:] = [ir for n, ir in enumerate(insts) if n not in drop]
    if new_key is not None:
        for ir in insts:
            if ir.snip is not None:
                ir.snip = (ir.snip[0], ir.snip[1], new_key)
    TRACE.count("om.bracket_saves_dropped", dropped)
    return dropped


#: Scratch preference for register-mode save brackets: highest temps
#: first, which the compiler's renamer allocates last.
_REGSAVE_POOL = tuple(reversed(R.RENAME_POOL)) + (R.AT,)


def _regsave_bracket(insts: list[IRInst], live: frozenset[int]) -> int:
    """Save the bracket's registers in dead scratch registers, not memory.

    A shrunk bracket that still saves registers pays five memory-path
    instructions (two sp adjusts, stq per register, ldq per register).
    When the payload never references sp, passes no stack arguments, and
    a distinct application-dead scratch register untouched by the whole
    snippet exists for every saved register, the frame is dropped and
    each pair becomes two register moves::

        stq gp, 0(sp)   ->   bis gp, zero, t11
        ldq gp, 0(sp)   ->   bis t11, zero, gp

    The replacement moves are untagged (``snip=None``): a register-mode
    bracket is not a coalescing candidate, and the cross-point coalescer
    must not mistake it for a stack bracket.  Clobbering the scratch is
    free — it is application-dead by construction.  Returns the number
    of pairs converted.
    """
    pro = [n for n, ir in enumerate(insts)
           if ir.snip is not None and ir.snip[1] == "pro"]
    epi = [n for n, ir in enumerate(insts)
           if ir.snip is not None and ir.snip[1] == "epi"]
    if not pro or not epi:
        return 0
    _frame, stack_args, saves = insts[pro[0]].snip[2]
    save_regs = [reg for reg, _ in saves]
    if stack_args or not save_regs:
        return 0
    for ir in insts:
        if ir.snip is None and R.SP in (ir.inst.uses() | ir.inst.defs()):
            return 0              # slot reads / effaddr(sp) need the frame
    touched: set[int] = set()
    for ir in insts:
        touched |= ir.inst.uses() | ir.inst.defs()
    pool = [r for r in _REGSAVE_POOL
            if r not in live and r not in touched]
    if len(pool) < len(save_regs):
        return 0
    scratch = dict(zip(save_regs, pool))
    out: list[IRInst] = []
    for n, ir in enumerate(insts):
        if ir.snip is None:
            out.append(ir)
            continue
        inst = ir.inst
        if inst.op is opcodes.LDA and inst.ra == R.SP:
            continue              # frame adjust: dropped
        if inst.op is opcodes.STQ and inst.rb == R.SP:
            out.append(IRInst(Instruction(opcodes.BIS, ra=inst.ra,
                                          rb=R.ZERO,
                                          rc=scratch[inst.ra])))
        elif inst.op is opcodes.LDQ and inst.rb == R.SP:
            out.append(IRInst(Instruction(opcodes.BIS,
                                          ra=scratch[inst.ra],
                                          rb=R.ZERO, rc=inst.ra)))
        else:                     # pragma: no cover - bracket is lda/stq/ldq
            out.append(ir)
    insts[:] = out
    TRACE.count("om.regsave_brackets")
    return len(save_regs)
