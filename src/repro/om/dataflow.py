"""Data-flow analyses over OM's IR.

These power ATOM's register-save minimization (paper Section 4):

* :func:`modified_registers` — the interprocedural summary "which registers
  may be modified once control reaches procedure P", the information the
  shipped ATOM used to shrink wrapper save sets;
* :func:`direct_writes` — per-procedure writes only, for the delayed-save
  optimization;
* :func:`call_sites_in_loops` — whether any call in P sits in a loop
  (delayed saves are only legal when none does);
* :class:`Liveness` — intra-procedural live-register analysis, the paper's
  "planned" refinement, implemented here as optimization level O3;
* :func:`rename_registers` — per-procedure bijective renaming of pure
  temporaries onto the densest prefix of the pool.
"""

from __future__ import annotations

from ..isa import registers as R
from ..obs import TRACE
from ..objfile.relocs import RelocType
from .ir import IRBlock, IRProc, IRProgram

#: Registers an unknown (indirect) callee may clobber.
ALL_CALLER_SAVED = frozenset(R.CALLER_SAVED)

#: Pure temporaries eligible for renaming: no calling-convention role.
RENAMEABLE = frozenset(R.RENAME_POOL)


def proc_writes(proc: IRProc) -> frozenset[int]:
    """Registers written by the procedure's own instructions."""
    out: set[int] = set()
    for ir in proc.instructions():
        out |= ir.inst.defs()
    return frozenset(out)


def call_graph(program: IRProgram) -> dict[str, set[str | None]]:
    """proc name -> set of callee names (None marks an indirect call)."""
    known = {p.name for p in program.procs}
    out: dict[str, set[str | None]] = {}
    for proc in program.procs:
        callees: set[str | None] = set()
        for ir in proc.instructions():
            if not ir.inst.is_call():
                continue
            if ir.target and ir.target[0] == "symbol" \
                    and ir.target[1] in known:
                callees.add(ir.target[1])
            else:
                callees.add(None)
        out[proc.name] = callees
    return out


def direct_writes(program: IRProgram) -> dict[str, frozenset[int]]:
    """Per-procedure register writes, with indirect calls widened."""
    out = {}
    for proc in program.procs:
        writes = set(proc_writes(proc))
        for ir in proc.instructions():
            if ir.inst.is_call() and (
                    not ir.target or ir.target[0] != "symbol"):
                writes |= ALL_CALLER_SAVED
        out[proc.name] = frozenset(writes)
    return out


def modified_registers(program: IRProgram) -> dict[str, frozenset[int]]:
    """Interprocedural may-modify summary (fixpoint over the call graph)."""
    graph = call_graph(program)
    known = set(graph)
    summary: dict[str, set[int]] = {
        p.name: set(proc_writes(p)) for p in program.procs}
    changed = True
    while changed:
        changed = False
        for name, callees in graph.items():
            acc = summary[name]
            before = len(acc)
            for callee in callees:
                if callee is None or callee not in known:
                    acc |= ALL_CALLER_SAVED
                else:
                    acc |= summary[callee]
            if len(acc) != before:
                changed = True
    return {name: frozenset(regs) for name, regs in summary.items()}


# ---- inlinability (O4) -----------------------------------------------------

#: Fixups whose encodings stay correct when an analysis body is spliced
#: into the application's text: the gp-materialization pair (re-pointed at
#: the absolute ``anal$_gp`` landmark) and literal-table loads (whose
#: gp-relative displacement is invariant under relocation — slot address
#: and gp shift by the same delta).
_INLINABLE_RELOCS = frozenset({RelocType.GPHI16, RelocType.GPLO16,
                               RelocType.GOT16})


def inline_summary(proc: IRProc, *,
                   max_insts: int = 48) -> frozenset[int] | None:
    """Side-effect summary deciding whether calls to ``proc`` may be
    replaced by its body at an instrumentation point (opt level O4).

    Returns the set of registers the body clobbers when the procedure is
    inlinable, else None.  Inlinable means the body is a single
    straight-line block of at most ``max_insts`` instructions ending in a
    plain ``ret`` through ra, and every other instruction

    * performs no control transfer, call, or system call;
    * never reads or writes sp (a frameless leaf) or ra;
    * writes only caller-saved registers and gp, so a save bracket can
      cover everything it touches;
    * carries only relocations from :data:`_INLINABLE_RELOCS`.

    Memory side effects (stores to the analysis data region) are
    permitted: the inlined copy performs them in the same order the
    called routine would, which is what keeps analysis output
    bit-identical across opt levels.
    """
    if len(proc.blocks) != 1:
        return None
    insts = proc.blocks[0].insts
    if not insts or len(insts) > max_insts:
        return None
    ret = insts[-1].inst
    if not ret.is_ret() or ret.rb != R.RA:
        return None
    clobbers: set[int] = set()
    writable = ALL_CALLER_SAVED | {R.GP, R.ZERO}
    for ir in insts[:-1]:
        inst = ir.inst
        if inst.ends_block() or inst.is_call() or inst.is_syscall():
            return None
        touched = inst.defs() | inst.uses()
        if R.SP in touched or R.RA in touched:
            return None
        if not inst.defs() <= writable:
            return None
        if any(rel.type not in _INLINABLE_RELOCS for rel in ir.relocs):
            return None
        clobbers |= inst.defs()
    clobbers.discard(R.ZERO)
    TRACE.count("om.inline_summaries")
    return frozenset(clobbers)


# ---- loops ----------------------------------------------------------------

def blocks_in_loops(proc: IRProc) -> set[int]:
    """Indices (IRBlock.index) of blocks that are part of some cycle.

    Uses Tarjan SCCs: a block is "in a loop" when its SCC has more than one
    node, or it has a self edge.
    """
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[IRBlock] = []
    counter = [0]
    result: set[int] = set()

    def strongconnect(block: IRBlock) -> None:
        work = [(block, iter(block.succs))]
        index[block.index] = low[block.index] = counter[0]
        counter[0] += 1
        stack.append(block)
        on_stack.add(block.index)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ.index not in index:
                    index[succ.index] = low[succ.index] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ.index)
                    work.append((succ, iter(succ.succs)))
                    advanced = True
                    break
                if succ.index in on_stack:
                    low[node.index] = min(low[node.index],
                                          index[succ.index])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent.index] = min(low[parent.index],
                                        low[node.index])
            if low[node.index] == index[node.index]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member.index)
                    scc.append(member)
                    if member is node:
                        break
                if len(scc) > 1:
                    result.update(b.index for b in scc)
                elif any(s is node for s in node.succs):
                    result.add(node.index)

    for block in proc.blocks:
        if block.index not in index:
            strongconnect(block)
    return result


def call_sites_in_loops(proc: IRProc) -> bool:
    """True when any call instruction in the procedure sits in a loop."""
    loopy = blocks_in_loops(proc)
    for block in proc.blocks:
        if block.index in loopy and any(i.inst.is_call()
                                        for i in block.insts):
            return True
    return False


# ---- liveness --------------------------------------------------------------

#: Registers assumed live when a procedure returns.
_LIVE_AT_RET = frozenset({R.V0, R.SP, R.GP} | R.CALLEE_SAVED)
#: Registers a (convention-following) call uses.
_CALL_USES = frozenset({R.A0, R.A1, R.A2, R.A3, R.A4, R.A5, R.SP, R.GP,
                        R.PV})


class Liveness:
    """Backward intra-procedural liveness with conventional call effects.

    Sound only for convention-following code, which is why the paper ships
    the data-flow-summary approach as the default and leaves liveness as a
    planned refinement (our opt level O3).
    """

    def __init__(self, proc: IRProc):
        self.proc = proc
        self.live_out: dict[int, frozenset[int]] = {}
        self.live_in: dict[int, frozenset[int]] = {}
        self._solve()
        TRACE.count("om.liveness_procs")

    def _transfer(self, block: IRBlock,
                  live: frozenset[int]) -> frozenset[int]:
        current = set(live)
        for ir in reversed(block.insts):
            inst = ir.inst
            if inst.is_call():
                current -= ALL_CALLER_SAVED
                current |= _CALL_USES
            else:
                current -= inst.defs()
                current |= inst.uses()
        return frozenset(current)

    def _solve(self) -> None:
        blocks = self.proc.blocks
        for block in blocks:
            exits = not block.succs
            self.live_out[block.index] = _LIVE_AT_RET if exits \
                else frozenset()
            self.live_in[block.index] = frozenset()
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                out: set[int] = set()
                if block.succs:
                    for succ in block.succs:
                        out |= self.live_in[succ.index]
                else:
                    out = set(_LIVE_AT_RET)
                out_f = frozenset(out)
                if out_f != self.live_out[block.index]:
                    self.live_out[block.index] = out_f
                new_in = self._transfer(block, out_f)
                if new_in != self.live_in[block.index]:
                    self.live_in[block.index] = new_in
                    changed = True

    def live_before(self, block: IRBlock, inst_index: int) -> frozenset[int]:
        """Registers live immediately before block.insts[inst_index]."""
        current = set(self.live_out[block.index])
        for i in range(len(block.insts) - 1, inst_index - 1, -1):
            inst = block.insts[i].inst
            if inst.is_call():
                current -= ALL_CALLER_SAVED
                current |= _CALL_USES
            else:
                current -= inst.defs()
                current |= inst.uses()
        return frozenset(current)

    def live_after(self, block: IRBlock, inst_index: int) -> frozenset[int]:
        """Registers live immediately after block.insts[inst_index]."""
        current = set(self.live_out[block.index])
        for i in range(len(block.insts) - 1, inst_index, -1):
            inst = block.insts[i].inst
            if inst.is_call():
                current -= ALL_CALLER_SAVED
                current |= _CALL_USES
            else:
                current -= inst.defs()
                current |= inst.uses()
        return frozenset(current)


# ---- register renaming ----------------------------------------------------------

def rename_registers(proc: IRProc) -> dict[int, int]:
    """Bijectively remap the pure temporaries a procedure touches onto the
    densest prefix of the rename pool; returns the mapping applied.

    Safe because renameable registers carry no calling-convention role and
    the map is applied uniformly to every instruction of the procedure.
    """
    used: set[int] = set()
    for ir in proc.instructions():
        inst = ir.inst
        used |= (inst.defs() | inst.uses()) & RENAMEABLE
    targets = [r for r in R.RENAME_POOL]
    mapping: dict[int, int] = {}
    taken: set[int] = set()
    # Keep registers already in the densest prefix where they are.
    ordered = sorted(used, key=lambda r: R.RENAME_POOL.index(r))
    for reg in ordered:
        for cand in targets:
            if cand not in taken:
                mapping[reg] = cand
                taken.add(cand)
                break
    if all(src == dst for src, dst in mapping.items()):
        return mapping
    for ir in proc.instructions():
        inst = ir.inst
        if inst.ra in mapping:
            inst.ra = mapping[inst.ra]
        if not inst.is_lit and inst.rb in mapping:
            inst.rb = mapping[inst.rb]
        if inst.rc in mapping:
            inst.rc = mapping[inst.rc]
    return mapping
