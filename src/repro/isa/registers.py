"""Register file and calling conventions of the WRL-64 ISA.

WRL-64 is the synthetic 64-bit RISC architecture this reproduction targets.
It is modeled closely on the Alpha AXP running OSF/1 (the paper's platform):
32 integer registers, six argument registers, a caller/callee-save split, a
dedicated return-address register, a global pointer, and a hard-wired zero
register.  The register conventions drive everything ATOM does to preserve
the application's execution state around calls to analysis routines.
"""

from __future__ import annotations

NUM_REGS = 32

# Canonical software names, indexed by register number.
REG_NAMES = (
    "v0",                                   # r0  - function return value
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",   # r1-r8 - temporaries
    "s0", "s1", "s2", "s3", "s4", "s5",     # r9-r14 - callee-saved
    "fp",                                   # r15 - frame pointer (callee-saved)
    "a0", "a1", "a2", "a3", "a4", "a5",     # r16-r21 - argument registers
    "t8", "t9", "t10", "t11",               # r22-r25 - more temporaries
    "ra",                                   # r26 - return address
    "pv",                                   # r27 - procedure value (indirect-call target)
    "at",                                   # r28 - assembler temporary
    "gp",                                   # r29 - global pointer
    "sp",                                   # r30 - stack pointer
    "zero",                                 # r31 - hard-wired zero
)

# Number lookup from any accepted spelling ("a0", "$16", "r16", "$a0").
REG_NUMBERS: dict[str, int] = {}
for _n, _name in enumerate(REG_NAMES):
    REG_NUMBERS[_name] = _n
    REG_NUMBERS[f"${_name}"] = _n
    REG_NUMBERS[f"r{_n}"] = _n
    REG_NUMBERS[f"${_n}"] = _n

# Friendly constants for code that builds instructions programmatically.
V0 = 0
T0, T1, T2, T3, T4, T5, T6, T7 = range(1, 9)
S0, S1, S2, S3, S4, S5 = range(9, 15)
FP = 15
A0, A1, A2, A3, A4, A5 = range(16, 22)
T8, T9, T10, T11 = range(22, 26)
RA = 26
PV = 27
AT = 28
GP = 29
SP = 30
ZERO = 31

ARG_REGS = (A0, A1, A2, A3, A4, A5)
NUM_ARG_REGS = len(ARG_REGS)

# Caller-saved registers are not preserved across procedure calls; ATOM must
# save any of these that the analysis routines may modify.  The global
# pointer is handled specially (each link group has its own gp) and the
# stack pointer is preserved by construction, so neither appears here.
CALLER_SAVED = frozenset(
    {V0, T0, T1, T2, T3, T4, T5, T6, T7, A0, A1, A2, A3, A4, A5,
     T8, T9, T10, T11, RA, PV, AT}
)

# Callee-saved registers are preserved by any convention-following callee.
CALLEE_SAVED = frozenset({S0, S1, S2, S3, S4, S5, FP, SP})

# Registers the register-renaming optimization may use as rename targets,
# ordered by preference (low temporaries first so the caller-save footprint
# of analysis code stays as small and as dense as possible).
RENAME_POOL = (T0, T1, T2, T3, T4, T5, T6, T7, T8, T9, T10, T11)


def reg_name(num: int) -> str:
    """Return the canonical software name of register ``num``."""
    if not 0 <= num < NUM_REGS:
        raise ValueError(f"register number out of range: {num}")
    return REG_NAMES[num]


def reg_number(name: str) -> int:
    """Parse a register name in any accepted spelling to its number."""
    try:
        return REG_NUMBERS[name.lower()]
    except KeyError:
        raise ValueError(f"unknown register name: {name!r}") from None


def is_caller_saved(num: int) -> bool:
    return num in CALLER_SAVED


def is_callee_saved(num: int) -> bool:
    return num in CALLEE_SAVED
