"""Opcode table and instruction classification for WRL-64.

Every instruction has a unique 6-bit primary opcode and belongs to one of
four encoding formats (memory, branch, jump, operate) plus the system
format.  The classification mirrors the ``InstType*`` predicates of the
ATOM API: conditional branch, unconditional branch, subroutine call, load,
store, and so on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Format(enum.Enum):
    """Instruction encoding format."""

    MEMORY = "memory"     # op ra, disp16(rb)
    BRANCH = "branch"     # op ra, disp21   (pc-relative, word displacement)
    JUMP = "jump"         # op ra, (rb)
    OPERATE = "operate"   # op ra, rb|#lit8, rc
    SYSTEM = "system"     # op imm26


class InstClass(enum.Enum):
    """Semantic class, the basis of ATOM's ``IsInstType`` queries."""

    LOAD = "load"
    STORE = "store"
    LOAD_ADDRESS = "load_address"   # lda / ldah: address arithmetic
    COND_BRANCH = "cond_branch"
    UNCOND_BRANCH = "uncond_branch"  # br
    CALL = "call"                    # bsr / jsr
    JUMP = "jump"                    # jmp (indirect, non-call)
    RET = "ret"
    OPERATE = "operate"
    SYSCALL = "syscall"
    HALT = "halt"


@dataclass(frozen=True)
class OpInfo:
    """Static description of one opcode."""

    mnemonic: str
    opcode: int
    format: Format
    inst_class: InstClass
    #: For memory-class ops, the access size in bytes (0 for lda/ldah).
    access_size: int = 0
    #: True for loads/stores whose value is sign-extended (ldl) vs zero (ldbu).
    sign_extend: bool = False
    #: Base execution cost in cycles under the default cost model.
    cycles: int = 1


_TABLE: list[OpInfo] = []


def _op(mnemonic: str, opcode: int, fmt: Format, cls: InstClass, **kw) -> OpInfo:
    info = OpInfo(mnemonic, opcode, fmt, cls, **kw)
    _TABLE.append(info)
    return info


# --- Memory format -------------------------------------------------------
LDA = _op("lda", 0x08, Format.MEMORY, InstClass.LOAD_ADDRESS)
LDAH = _op("ldah", 0x09, Format.MEMORY, InstClass.LOAD_ADDRESS)
LDBU = _op("ldbu", 0x0A, Format.MEMORY, InstClass.LOAD, access_size=1, cycles=2)
LDWU = _op("ldwu", 0x0C, Format.MEMORY, InstClass.LOAD, access_size=2, cycles=2)
LDL = _op("ldl", 0x28, Format.MEMORY, InstClass.LOAD, access_size=4,
          sign_extend=True, cycles=2)
LDQ = _op("ldq", 0x29, Format.MEMORY, InstClass.LOAD, access_size=8, cycles=2)
STB = _op("stb", 0x0E, Format.MEMORY, InstClass.STORE, access_size=1)
STW = _op("stw", 0x0D, Format.MEMORY, InstClass.STORE, access_size=2)
STL = _op("stl", 0x2C, Format.MEMORY, InstClass.STORE, access_size=4)
STQ = _op("stq", 0x2D, Format.MEMORY, InstClass.STORE, access_size=8)

# --- Branch format -------------------------------------------------------
BR = _op("br", 0x30, Format.BRANCH, InstClass.UNCOND_BRANCH)
BSR = _op("bsr", 0x34, Format.BRANCH, InstClass.CALL)
BEQ = _op("beq", 0x39, Format.BRANCH, InstClass.COND_BRANCH)
BNE = _op("bne", 0x3D, Format.BRANCH, InstClass.COND_BRANCH)
BLT = _op("blt", 0x3A, Format.BRANCH, InstClass.COND_BRANCH)
BLE = _op("ble", 0x3B, Format.BRANCH, InstClass.COND_BRANCH)
BGT = _op("bgt", 0x3F, Format.BRANCH, InstClass.COND_BRANCH)
BGE = _op("bge", 0x3E, Format.BRANCH, InstClass.COND_BRANCH)
BLBC = _op("blbc", 0x38, Format.BRANCH, InstClass.COND_BRANCH)
BLBS = _op("blbs", 0x3C, Format.BRANCH, InstClass.COND_BRANCH)

# --- Jump format ---------------------------------------------------------
JMP = _op("jmp", 0x1A, Format.JUMP, InstClass.JUMP)
JSR = _op("jsr", 0x1B, Format.JUMP, InstClass.CALL)
RET = _op("ret", 0x1C, Format.JUMP, InstClass.RET)

# --- Operate format ------------------------------------------------------
ADDQ = _op("addq", 0x10, Format.OPERATE, InstClass.OPERATE)
SUBQ = _op("subq", 0x11, Format.OPERATE, InstClass.OPERATE)
MULQ = _op("mulq", 0x12, Format.OPERATE, InstClass.OPERATE, cycles=8)
DIVQ = _op("divq", 0x13, Format.OPERATE, InstClass.OPERATE, cycles=16)
REMQ = _op("remq", 0x14, Format.OPERATE, InstClass.OPERATE, cycles=16)
AND = _op("and", 0x15, Format.OPERATE, InstClass.OPERATE)
BIS = _op("bis", 0x16, Format.OPERATE, InstClass.OPERATE)   # logical OR
XOR = _op("xor", 0x17, Format.OPERATE, InstClass.OPERATE)
BIC = _op("bic", 0x18, Format.OPERATE, InstClass.OPERATE)   # a AND NOT b
ORNOT = _op("ornot", 0x19, Format.OPERATE, InstClass.OPERATE)
SLL = _op("sll", 0x20, Format.OPERATE, InstClass.OPERATE)
SRL = _op("srl", 0x21, Format.OPERATE, InstClass.OPERATE)
SRA = _op("sra", 0x22, Format.OPERATE, InstClass.OPERATE)
CMPEQ = _op("cmpeq", 0x23, Format.OPERATE, InstClass.OPERATE)
CMPLT = _op("cmplt", 0x24, Format.OPERATE, InstClass.OPERATE)
CMPLE = _op("cmple", 0x25, Format.OPERATE, InstClass.OPERATE)
CMPULT = _op("cmpult", 0x26, Format.OPERATE, InstClass.OPERATE)
CMPULE = _op("cmpule", 0x27, Format.OPERATE, InstClass.OPERATE)
CMOVEQ = _op("cmoveq", 0x2A, Format.OPERATE, InstClass.OPERATE)
CMOVNE = _op("cmovne", 0x2B, Format.OPERATE, InstClass.OPERATE)
SEXTB = _op("sextb", 0x2E, Format.OPERATE, InstClass.OPERATE)
SEXTW = _op("sextw", 0x2F, Format.OPERATE, InstClass.OPERATE)
SEXTL = _op("sextl", 0x31, Format.OPERATE, InstClass.OPERATE)
UMULH = _op("umulh", 0x32, Format.OPERATE, InstClass.OPERATE, cycles=8)

# --- System format -------------------------------------------------------
SYS = _op("sys", 0x00, Format.SYSTEM, InstClass.SYSCALL, cycles=50)
HALT = _op("halt", 0x01, Format.SYSTEM, InstClass.HALT)

# Lookup tables.
BY_MNEMONIC: dict[str, OpInfo] = {o.mnemonic: o for o in _TABLE}
BY_OPCODE: dict[int, OpInfo] = {}
for _o in _TABLE:
    if _o.opcode in BY_OPCODE:
        raise AssertionError(f"duplicate opcode 0x{_o.opcode:02x}")
    BY_OPCODE[_o.opcode] = _o

ALL_OPS: tuple[OpInfo, ...] = tuple(_TABLE)

COND_BRANCH_OPS = tuple(o for o in _TABLE if o.inst_class is InstClass.COND_BRANCH)
LOAD_OPS = tuple(o for o in _TABLE if o.inst_class is InstClass.LOAD)
STORE_OPS = tuple(o for o in _TABLE if o.inst_class is InstClass.STORE)


def lookup(mnemonic: str) -> OpInfo:
    """Return the :class:`OpInfo` for a mnemonic, raising on unknown names."""
    try:
        return BY_MNEMONIC[mnemonic]
    except KeyError:
        raise ValueError(f"unknown mnemonic: {mnemonic!r}") from None
