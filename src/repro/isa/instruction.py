"""The :class:`Instruction` value type shared by every layer of the system.

The assembler produces them, the encoder packs them into 32-bit words, the
machine decodes words back into them, and OM's symbolic IR annotates them.
An instruction is a small immutable-by-convention record whose meaning is
given by its :class:`~repro.isa.opcodes.OpInfo`.

Register def/use sets are computed here because both OM's data-flow
analyses and ATOM's register-save machinery need them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from . import opcodes, registers
from .opcodes import Format, InstClass, OpInfo

# Syscall argument registers examined by the SYS def/use approximation.
_SYS_USES = frozenset({registers.V0, *registers.ARG_REGS})
_SYS_DEFS = frozenset({registers.V0})


@dataclass
class Instruction:
    """One WRL-64 instruction.

    Field use by format:

    * memory:  ``op ra, disp(rb)``
    * branch:  ``op ra, disp`` (signed word displacement from pc+4)
    * jump:    ``op ra, (rb)``
    * operate: ``op ra, rb, rc`` or ``op ra, #lit, rc`` when ``is_lit``
    * system:  ``op imm``
    """

    op: OpInfo
    ra: int = registers.ZERO
    rb: int = registers.ZERO
    rc: int = registers.ZERO
    disp: int = 0
    lit: int = 0
    is_lit: bool = False
    imm: int = 0

    # ---- classification helpers ----------------------------------------

    @property
    def mnemonic(self) -> str:
        return self.op.mnemonic

    @property
    def inst_class(self) -> InstClass:
        return self.op.inst_class

    def is_load(self) -> bool:
        return self.op.inst_class is InstClass.LOAD

    def is_store(self) -> bool:
        return self.op.inst_class is InstClass.STORE

    def is_memory_ref(self) -> bool:
        """True for instructions that access memory (loads and stores)."""
        return self.is_load() or self.is_store()

    def is_cond_branch(self) -> bool:
        return self.op.inst_class is InstClass.COND_BRANCH

    def is_uncond_branch(self) -> bool:
        return self.op.inst_class is InstClass.UNCOND_BRANCH

    def is_call(self) -> bool:
        return self.op.inst_class is InstClass.CALL

    def is_ret(self) -> bool:
        return self.op.inst_class is InstClass.RET

    def is_jump(self) -> bool:
        return self.op.inst_class is InstClass.JUMP

    def is_syscall(self) -> bool:
        return self.op.inst_class is InstClass.SYSCALL

    def ends_block(self) -> bool:
        """True when the instruction terminates a basic block.

        Matching Pixie-era tools (and ATOM's view of a block as a run of
        instructions executed together), calls and syscalls end blocks in
        addition to branches, jumps and returns.
        """
        return self.op.inst_class in (
            InstClass.COND_BRANCH, InstClass.UNCOND_BRANCH, InstClass.CALL,
            InstClass.JUMP, InstClass.RET, InstClass.SYSCALL, InstClass.HALT,
        )

    def is_control_transfer(self) -> bool:
        return self.ends_block() and self.op.inst_class not in (
            InstClass.SYSCALL, InstClass.HALT)

    # ---- register def/use -----------------------------------------------

    def defs(self) -> frozenset[int]:
        """Registers written by this instruction (never includes ``zero``)."""
        op = self.op
        out: set[int] = set()
        if op.format is Format.MEMORY:
            if op.inst_class in (InstClass.LOAD, InstClass.LOAD_ADDRESS):
                out.add(self.ra)
        elif op.format is Format.BRANCH:
            if op.inst_class in (InstClass.UNCOND_BRANCH, InstClass.CALL):
                out.add(self.ra)   # link register (zero for a plain br)
        elif op.format is Format.JUMP:
            if op.inst_class in (InstClass.CALL, InstClass.JUMP):
                out.add(self.ra)
        elif op.format is Format.OPERATE:
            out.add(self.rc)
        elif op.format is Format.SYSTEM:
            if op.inst_class is InstClass.SYSCALL:
                out.update(_SYS_DEFS)
        out.discard(registers.ZERO)
        return frozenset(out)

    def uses(self) -> frozenset[int]:
        """Registers read by this instruction (never includes ``zero``)."""
        op = self.op
        out: set[int] = set()
        if op.format is Format.MEMORY:
            out.add(self.rb)
            if op.inst_class is InstClass.STORE:
                out.add(self.ra)
        elif op.format is Format.BRANCH:
            if op.inst_class is InstClass.COND_BRANCH:
                out.add(self.ra)
        elif op.format is Format.JUMP:
            out.add(self.rb)
        elif op.format is Format.OPERATE:
            out.add(self.ra)
            if not self.is_lit:
                out.add(self.rb)
            if op.mnemonic in ("cmoveq", "cmovne"):
                out.add(self.rc)   # conditional move may keep the old value
        elif op.format is Format.SYSTEM:
            if op.inst_class is InstClass.SYSCALL:
                out.update(_SYS_USES)
        out.discard(registers.ZERO)
        return frozenset(out)

    # ---- misc -------------------------------------------------------------

    def copy(self, **changes) -> "Instruction":
        return replace(self, **changes)

    def __str__(self) -> str:  # assembly-ish rendering, no symbols
        r = registers.reg_name
        op = self.op
        if op.format is Format.MEMORY:
            return f"{op.mnemonic} {r(self.ra)}, {self.disp}({r(self.rb)})"
        if op.format is Format.BRANCH:
            return f"{op.mnemonic} {r(self.ra)}, .{self.disp:+d}"
        if op.format is Format.JUMP:
            return f"{op.mnemonic} {r(self.ra)}, ({r(self.rb)})"
        if op.format is Format.OPERATE:
            src2 = f"#{self.lit}" if self.is_lit else r(self.rb)
            return f"{op.mnemonic} {r(self.ra)}, {src2}, {r(self.rc)}"
        return f"{op.mnemonic} {self.imm}" if op is opcodes.SYS else op.mnemonic


def nop() -> Instruction:
    """The canonical no-op: ``bis zero, zero, zero``."""
    return Instruction(opcodes.BIS, ra=registers.ZERO, rb=registers.ZERO,
                       rc=registers.ZERO)
