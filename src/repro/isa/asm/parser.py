"""Line-level parsing for the WRL-64 assembler.

Assembly is line oriented: ``[label:] [mnemonic operand, ...] [# comment]``.
Operands are registers, expressions (integers, character literals, symbols,
``sym+const``, ``%hi(sym)``/``%lo(sym)``/``%got(sym)``), or memory operands
``expr(reg)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .. import registers


class AsmSyntaxError(Exception):
    def __init__(self, message: str, line_no: int = 0, line: str = ""):
        self.line_no = line_no
        self.line = line
        super().__init__(f"line {line_no}: {message}" if line_no else message)


@dataclass
class ExprRef:
    """A symbolic expression: ``symbol + addend`` with an optional %-modifier."""

    symbol: str | None = None
    addend: int = 0
    modifier: str | None = None   # "hi" | "lo" | "got" | None

    @property
    def is_const(self) -> bool:
        return self.symbol is None

    def __str__(self) -> str:
        base = self.symbol or ""
        if self.addend or not base:
            base += f"+{self.addend}" if base else str(self.addend)
        return f"%{self.modifier}({base})" if self.modifier else base


@dataclass
class Operand:
    """One parsed operand."""

    kind: str                     # "reg" | "expr" | "mem"
    reg: int = 0
    expr: ExprRef | None = None
    base: int = registers.ZERO    # base register for "mem"


@dataclass
class Line:
    """One parsed source line."""

    number: int
    label: str | None = None
    mnemonic: str | None = None
    operands: list[Operand] = field(default_factory=list)
    #: Raw argument text for directives that parse their own payload.
    raw_args: str = ""


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_CHAR_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
                 "'": "'", '"': '"'}


def parse_int(text: str) -> int:
    """Parse an integer literal: decimal, 0x hex, 0o octal, or 'c' char."""
    text = text.strip()
    if len(text) >= 3 and text[0] == "'" and text[-1] == "'":
        body = text[1:-1]
        if body.startswith("\\"):
            if len(body) == 2 and body[1] in _CHAR_ESCAPES:
                return ord(_CHAR_ESCAPES[body[1]])
            raise ValueError(f"bad character escape: {text}")
        if len(body) == 1:
            return ord(body)
        raise ValueError(f"bad character literal: {text}")
    return int(text, 0)


def parse_expr(text: str) -> ExprRef:
    """Parse an expression operand into an :class:`ExprRef`."""
    text = text.strip()
    modifier = None
    m = re.match(r"^%(hi|lo|got)\((.+)\)$", text)
    if m:
        modifier = m.group(1)
        text = m.group(2).strip()
    # Try a plain integer first.
    try:
        return ExprRef(addend=parse_int(text), modifier=modifier)
    except ValueError:
        pass
    # symbol, symbol+const, symbol-const
    m = re.match(r"^([A-Za-z_.$][\w.$]*)\s*([+-]\s*.+)?$", text)
    if not m:
        raise ValueError(f"bad expression: {text!r}")
    symbol = m.group(1)
    addend = 0
    if m.group(2):
        addend = parse_int(m.group(2).replace(" ", ""))
    return ExprRef(symbol=symbol, addend=addend, modifier=modifier)


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas not inside parens or quotes."""
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    cur: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if quote:
            cur.append(ch)
            if ch == "\\" and i + 1 < len(text):
                cur.append(text[i + 1])
                i += 1
            elif ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
            cur.append(ch)
        elif ch == "(":
            depth += 1
            cur.append(ch)
        elif ch == ")":
            depth -= 1
            cur.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
        i += 1
    last = "".join(cur).strip()
    if last:
        parts.append(last)
    return parts


def parse_operand(text: str) -> Operand:
    """Parse one operand of an instruction."""
    text = text.strip()
    # Register?
    try:
        return Operand("reg", reg=registers.reg_number(text))
    except ValueError:
        pass
    # Memory operand expr(reg) -- including bare (reg) and %got(sym)(reg).
    m = re.match(r"^(.*)\(\s*([A-Za-z$][\w]*)\s*\)$", text)
    if m:
        try:
            base = registers.reg_number(m.group(2))
        except ValueError:
            base = None
        if base is not None:
            inner = m.group(1).strip()
            expr = parse_expr(inner) if inner else ExprRef()
            return Operand("mem", expr=expr, base=base)
    return Operand("expr", expr=parse_expr(text))


def strip_comment(line: str) -> str:
    """Remove ``#`` / ``;`` comments, respecting string and char literals."""
    out: list[str] = []
    quote: str | None = None
    i = 0
    while i < len(line):
        ch = line[i]
        if quote:
            out.append(ch)
            if ch == "\\" and i + 1 < len(line):
                out.append(line[i + 1])
                i += 1
            elif ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
            out.append(ch)
        elif ch in "#;":
            break
        else:
            out.append(ch)
        i += 1
    return "".join(out)


def parse_line(raw: str, number: int) -> list[Line]:
    """Parse one raw source line (may carry a label plus a statement)."""
    text = strip_comment(raw).strip()
    if not text:
        return []
    lines: list[Line] = []
    m = _LABEL_RE.match(text)
    label = None
    if m:
        label = m.group(1)
        text = m.group(2).strip()
    if not text:
        return [Line(number, label=label)]
    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    line = Line(number, label=label, mnemonic=mnemonic, raw_args=rest)
    if not mnemonic.startswith("."):
        try:
            line.operands = [parse_operand(p) for p in _split_operands(rest)]
        except ValueError as exc:
            raise AsmSyntaxError(str(exc), number, raw) from None
    lines.append(line)
    return lines
