"""Two-pass assembler for WRL-64 assembly source."""

from .assembler import AsmError, assemble
from .parser import AsmSyntaxError

__all__ = ["assemble", "AsmError", "AsmSyntaxError"]
