"""The WRL-64 two-phase assembler.

Phase one walks the source, expanding pseudo-instructions, appending
encoded words and data bytes to the module's sections, defining labels,
and recording fixups for forward or external references.  Phase two
resolves branch fixups whose targets are local ``.text`` labels and turns
every other fixup into a relocation record for the linker.
"""

from __future__ import annotations

import struct

from .. import const, encoding, opcodes, registers
from ...objfile.module import Module
from ...objfile.relocs import Relocation, RelocType
from ...objfile.sections import BSS, TEXT
from ...objfile.symtab import SymBind, SymKind
from ..instruction import Instruction
from .parser import (AsmSyntaxError, Line, Operand, parse_expr,
                     parse_line)


class AsmError(AsmSyntaxError):
    """Semantic assembly error."""


def assemble(source: str, name: str = "<asm>") -> Module:
    """Assemble source text into a relocatable :class:`Module`."""
    return _Assembler(name).run(source)


class _Fixup:
    __slots__ = ("section", "offset", "type", "symbol", "addend", "line_no")

    def __init__(self, section: str, offset: int, type_: RelocType,
                 symbol: str, addend: int, line_no: int):
        self.section = section
        self.offset = offset
        self.type = type_
        self.symbol = symbol
        self.addend = addend
        self.line_no = line_no


class _Assembler:
    def __init__(self, name: str):
        self.module = Module(name=name)
        self.cur = TEXT
        self.fixups: list[_Fixup] = []
        self.globals: set[str] = set()
        self.pending_ents: dict[str, int] = {}   # proc name -> start offset
        self.line_no = 0

    # ---- driver ----------------------------------------------------------

    def run(self, source: str) -> Module:
        for number, raw in enumerate(source.splitlines(), start=1):
            self.line_no = number
            for line in parse_line(raw, number):
                self._statement(line)
        self._finalize()
        return self.module

    def _statement(self, line: Line) -> None:
        if line.label:
            self._define_label(line.label)
        if line.mnemonic is None:
            return
        if line.mnemonic.startswith("."):
            self._directive(line)
        else:
            self._instruction(line)

    def _err(self, msg: str) -> AsmError:
        return AsmError(msg, self.line_no)

    # ---- symbols & sections ----------------------------------------------

    def _sec(self):
        return self.module.section(self.cur)

    def _define_label(self, name: str) -> None:
        kind = SymKind.FUNC if (self.cur == TEXT and name in self.pending_ents) \
            else (SymKind.NOTYPE if self.cur == TEXT else SymKind.OBJECT)
        try:
            sym = self.module.symtab.define(name, self.cur, self._sec().size,
                                            kind=kind)
        except ValueError as exc:
            raise self._err(str(exc)) from None
        if name in self.globals:
            sym.bind = SymBind.GLOBAL

    # ---- directives --------------------------------------------------------

    def _directive(self, line: Line) -> None:
        name = line.mnemonic
        args = line.raw_args.strip()
        if name in (".text", ".data", ".bss"):
            self.cur = name
        elif name == ".globl" or name == ".global":
            for part in args.split(","):
                symname = part.strip()
                if not symname:
                    continue
                self.globals.add(symname)
                sym = self.module.symtab.get(symname)
                if sym is not None:
                    sym.bind = SymBind.GLOBAL
        elif name == ".ent":
            if self.cur != TEXT:
                raise self._err(".ent outside .text")
            self.pending_ents[args] = self._sec().size
            self._cur_proc = args
        elif name == ".frame":
            # .frame <framesize>, <outgoing-arg-bytes> — frame-layout
            # metadata (the analogue of OSF/1 procedure descriptors) used
            # by ATOM's in-frame register-save optimization.
            proc = getattr(self, "_cur_proc", None)
            if proc is None:
                raise self._err(".frame outside a .ent/.end bracket")
            parts = [p.strip() for p in args.split(",")]
            if len(parts) != 2:
                raise self._err(".frame needs framesize, outgoing")
            self.module.meta[f"frame:{proc}"] = int(parts[0], 0)
            self.module.meta[f"outgoing:{proc}"] = int(parts[1], 0)
        elif name == ".end":
            self._end_proc(args)
        elif name == ".align":
            power = int(args, 0)
            self._sec().align_to(1 << power)
        elif name in (".space", ".skip"):
            self._sec().reserve(int(args, 0))
        elif name == ".byte":
            self._data_ints(args, 1)
        elif name in (".word", ".short"):
            self._data_ints(args, 2)
        elif name == ".long":
            self._data_ints(args, 4)
        elif name == ".quad":
            self._data_ints(args, 8)
        elif name == ".ascii":
            self._sec().append(_parse_string(args, self.line_no))
        elif name == ".asciiz":
            self._sec().append(_parse_string(args, self.line_no) + b"\x00")
        elif name == ".comm":
            self._comm(args)
        else:
            raise self._err(f"unknown directive {name}")

    def _end_proc(self, name: str) -> None:
        self._cur_proc = None
        start = self.pending_ents.pop(name, None)
        if start is None:
            raise self._err(f".end without .ent: {name}")
        sym = self.module.symtab.get(name)
        if sym is None or sym.section != TEXT:
            raise self._err(f".end {name}: procedure label not defined in .text")
        sym.kind = SymKind.FUNC
        sym.size = self._sec().size - sym.value

    def _comm(self, args: str) -> None:
        parts = [p.strip() for p in args.split(",")]
        if len(parts) not in (2, 3):
            raise self._err(".comm needs name, size[, align]")
        name, size = parts[0], int(parts[1], 0)
        align = int(parts[2], 0) if len(parts) == 3 else 8
        bss = self.module.section(BSS)
        bss.align_to(align)
        offset = bss.reserve(size)
        sym = self.module.symtab.define(name, BSS, offset,
                                        kind=SymKind.OBJECT, size=size)
        sym.bind = SymBind.GLOBAL

    def _data_ints(self, args: str, width: int) -> None:
        sec = self._sec()
        if self.cur == BSS:
            raise self._err("initialized data in .bss")
        for part in _split_top(args):
            expr = parse_expr(part)
            if expr.is_const:
                value = expr.addend & ((1 << (8 * width)) - 1)
                sec.append(value.to_bytes(width, "little"))
            else:
                if width == 8:
                    rtype = RelocType.QUAD64
                elif width == 4:
                    rtype = RelocType.LONG32
                else:
                    raise self._err(
                        f"symbol reference needs .long or .quad: {part}")
                offset = sec.append(b"\x00" * width)
                self.fixups.append(_Fixup(self.cur, offset, rtype,
                                          expr.symbol, expr.addend,
                                          self.line_no))

    # ---- instructions -----------------------------------------------------

    def _instruction(self, line: Line) -> None:
        if self.cur != TEXT:
            raise self._err("instruction outside .text")
        for inst, fixup in self._expand(line):
            self._emit(inst, fixup)

    def _emit(self, inst: Instruction,
              fixup: tuple[RelocType, str, int] | None) -> None:
        sec = self._sec()
        offset = sec.append(struct.pack("<I", encoding.encode(inst)))
        if fixup is not None:
            rtype, symbol, addend = fixup
            self.fixups.append(_Fixup(TEXT, offset, rtype, symbol, addend,
                                      self.line_no))

    # Expansion returns (instruction, optional fixup) pairs.
    def _expand(self, line: Line):
        mn = line.mnemonic
        ops = line.operands
        handler = _PSEUDOS.get(mn)
        if handler is not None:
            yield from handler(self, ops)
            return
        try:
            info = opcodes.lookup(mn)
        except ValueError:
            raise self._err(f"unknown mnemonic {mn!r}") from None
        yield from self._expand_real(info, ops)

    def _expand_real(self, info, ops: list[Operand]):
        fmt = info.format
        if fmt is opcodes.Format.MEMORY:
            yield self._memory(info, ops)
        elif fmt is opcodes.Format.BRANCH:
            yield self._branch(info, ops)
        elif fmt is opcodes.Format.JUMP:
            yield self._jump(info, ops)
        elif fmt is opcodes.Format.OPERATE:
            yield from self._operate(info, ops)
        elif fmt is opcodes.Format.SYSTEM:
            imm = 0
            if ops:
                imm = self._const_expr(ops[0])
            yield Instruction(info, imm=imm), None

    def _memory(self, info, ops: list[Operand]):
        if len(ops) != 2 or ops[0].kind != "reg":
            raise self._err(f"{info.mnemonic} needs 'reg, addr' operands")
        ra = ops[0].reg
        addr = ops[1]
        if addr.kind == "mem":
            expr, base = addr.expr, addr.base
        elif addr.kind == "expr":
            expr, base = addr.expr, registers.ZERO
        else:
            raise self._err(f"bad address operand for {info.mnemonic}")
        inst = Instruction(info, ra=ra, rb=base, disp=0)
        if expr.is_const and expr.modifier is None:
            if not const.fits_signed(expr.addend, 16):
                raise self._err(f"displacement out of range: {expr.addend}")
            return inst.copy(disp=expr.addend), None
        rtype = {None: None, "hi": RelocType.HI16, "lo": RelocType.LO16,
                 "got": RelocType.GOT16}[expr.modifier]
        if rtype is None:
            raise self._err(
                f"symbolic displacement needs %hi/%lo/%got: {expr}")
        if rtype is RelocType.GOT16 and base != registers.GP:
            raise self._err("%got displacement requires gp base register")
        return inst, (rtype, expr.symbol, expr.addend)

    def _branch(self, info, ops: list[Operand]):
        # Accept "bxx target" and "bxx reg, target".
        if len(ops) == 1:
            ra = registers.RA if info is opcodes.BSR else registers.ZERO
            target = ops[0]
        elif len(ops) == 2 and ops[0].kind == "reg":
            ra, target = ops[0].reg, ops[1]
        else:
            raise self._err(f"bad operands for {info.mnemonic}")
        if target.kind != "expr" or target.expr.modifier:
            raise self._err(f"bad branch target for {info.mnemonic}")
        expr = target.expr
        inst = Instruction(info, ra=ra, disp=0)
        if expr.is_const:
            return inst.copy(disp=expr.addend), None
        return inst, (RelocType.BRANCH21, expr.symbol, expr.addend)

    def _jump(self, info, ops: list[Operand]):
        if info is opcodes.RET and not ops:
            return Instruction(info, ra=registers.ZERO, rb=registers.RA), None
        if len(ops) == 1:
            link = registers.RA if info is opcodes.JSR else registers.ZERO
            target = ops[0]
        elif len(ops) == 2:
            if ops[0].kind != "reg":
                raise self._err(f"bad link register for {info.mnemonic}")
            link, target = ops[0].reg, ops[1]
        else:
            raise self._err(f"bad operands for {info.mnemonic}")
        if target.kind == "mem" and (target.expr.is_const
                                     and target.expr.addend == 0):
            rb = target.base
        elif target.kind == "reg":
            rb = target.reg
        else:
            raise self._err(f"bad target for {info.mnemonic}")
        return Instruction(info, ra=link, rb=rb), None

    def _operate(self, info, ops: list[Operand]):
        # Sign-extension ops take a two-operand form: sextl rs, rd.
        if info.mnemonic in ("sextb", "sextw", "sextl") and len(ops) == 2:
            rs, rd = _need_regs(ops, 2, info.mnemonic)
            yield Instruction(info, ra=registers.ZERO, rb=rs, rc=rd), None
            return
        if len(ops) != 3 or ops[0].kind != "reg" or ops[2].kind != "reg":
            raise self._err(f"{info.mnemonic} needs 'reg, reg|imm, reg'")
        ra, rc = ops[0].reg, ops[2].reg
        src2 = ops[1]
        if src2.kind == "reg":
            yield Instruction(info, ra=ra, rb=src2.reg, rc=rc), None
            return
        value = self._const_expr(src2)
        # Convenience: fold negative addq/subq literals into the dual op.
        if value < 0 and info in (opcodes.ADDQ, opcodes.SUBQ):
            info = opcodes.SUBQ if info is opcodes.ADDQ else opcodes.ADDQ
            value = -value
        if 0 <= value <= encoding.LIT_MAX:
            yield Instruction(info, ra=ra, lit=value, is_lit=True, rc=rc), None
            return
        # Materialize oversized literals through the assembler temporary.
        for inst in const.materialize(value, registers.AT):
            yield inst, None
        yield Instruction(info, ra=ra, rb=registers.AT, rc=rc), None

    def _const_expr(self, op: Operand) -> int:
        if op.kind != "expr" or not op.expr.is_const or op.expr.modifier:
            raise self._err("constant expression expected")
        return op.expr.addend

    # ---- finalize -----------------------------------------------------------

    def _finalize(self) -> None:
        if self.pending_ents:
            raise AsmError(f".ent without .end: {sorted(self.pending_ents)}")
        for name in self.globals:
            self.module.symtab.refer(name).bind = SymBind.GLOBAL
        text = self.module.section(TEXT)
        for fix in self.fixups:
            sym = self.module.symtab.get(fix.symbol) if fix.symbol else None
            local_text = (fix.type is RelocType.BRANCH21 and sym is not None
                          and sym.section == TEXT)
            if local_text:
                disp = (sym.value + fix.addend - (fix.offset + 4)) // 4
                if not encoding.branch_reach_ok(disp):
                    raise AsmError(
                        f"branch out of range to {fix.symbol}", fix.line_no)
                word = struct.unpack_from("<I", text.data, fix.offset)[0]
                word = (word & ~0x1FFFFF) | (disp & 0x1FFFFF)
                struct.pack_into("<I", text.data, fix.offset, word)
            else:
                self.module.symtab.refer(fix.symbol)
                self.module.relocs.append(Relocation(
                    section=fix.section, offset=fix.offset, type=fix.type,
                    symbol=fix.symbol, addend=fix.addend))


# ---- pseudo-instructions ---------------------------------------------------

def _need_regs(ops: list[Operand], n: int, what: str) -> list[int]:
    if len(ops) != n or any(o.kind != "reg" for o in ops):
        raise AsmSyntaxError(f"{what} expects {n} register operand(s)")
    return [o.reg for o in ops]


def _p_nop(asm: _Assembler, ops):
    yield Instruction(opcodes.BIS, ra=registers.ZERO, rb=registers.ZERO,
                      rc=registers.ZERO), None


def _p_mov(asm: _Assembler, ops):
    if len(ops) == 2 and ops[0].kind == "expr":
        yield from _p_li(asm, [ops[1], ops[0]])
        return
    rs, rd = _need_regs(ops, 2, "mov")
    yield Instruction(opcodes.BIS, ra=rs, rb=registers.ZERO, rc=rd), None


def _p_clr(asm: _Assembler, ops):
    (rd,) = _need_regs(ops, 1, "clr")
    yield Instruction(opcodes.BIS, ra=registers.ZERO, rb=registers.ZERO,
                      rc=rd), None


def _p_li(asm: _Assembler, ops):
    if len(ops) != 2 or ops[0].kind != "reg":
        raise asm._err("li expects 'reg, constant'")
    value = asm._const_expr(ops[1])
    for inst in const.materialize(value, ops[0].reg):
        yield inst, None


def _p_la(asm: _Assembler, ops):
    if len(ops) != 2 or ops[0].kind != "reg" or ops[1].kind != "expr":
        raise asm._err("la expects 'reg, symbol'")
    expr = ops[1].expr
    if expr.modifier:
        raise asm._err("la takes a bare symbol")
    yield (Instruction(opcodes.LDQ, ra=ops[0].reg, rb=registers.GP),
           (RelocType.GOT16, expr.symbol or "", expr.addend))


def _p_laa(asm: _Assembler, ops):
    if len(ops) != 2 or ops[0].kind != "reg" or ops[1].kind != "expr":
        raise asm._err("laa expects 'reg, symbol'")
    expr = ops[1].expr
    rd = ops[0].reg
    if expr.is_const:
        for inst in const.materialize(expr.addend, rd):
            yield inst, None
        return
    yield (Instruction(opcodes.LDAH, ra=rd, rb=registers.ZERO),
           (RelocType.HI16, expr.symbol, expr.addend))
    yield (Instruction(opcodes.LDA, ra=rd, rb=rd),
           (RelocType.LO16, expr.symbol, expr.addend))


def _p_ldgp(asm: _Assembler, ops):
    yield (Instruction(opcodes.LDAH, ra=registers.GP, rb=registers.ZERO),
           (RelocType.GPHI16, "_gp", 0))
    yield (Instruction(opcodes.LDA, ra=registers.GP, rb=registers.GP),
           (RelocType.GPLO16, "_gp", 0))


def _p_call(asm: _Assembler, ops):
    if len(ops) != 1 or ops[0].kind != "expr" or ops[0].expr.is_const:
        raise asm._err("call expects a symbol")
    expr = ops[0].expr
    yield (Instruction(opcodes.BSR, ra=registers.RA),
           (RelocType.BRANCH21, expr.symbol, expr.addend))


def _p_negq(asm: _Assembler, ops):
    rs, rd = _need_regs(ops, 2, "negq")
    yield Instruction(opcodes.SUBQ, ra=registers.ZERO, rb=rs, rc=rd), None


def _p_not(asm: _Assembler, ops):
    rs, rd = _need_regs(ops, 2, "not")
    yield Instruction(opcodes.ORNOT, ra=registers.ZERO, rb=rs, rc=rd), None


_PSEUDOS = {
    "nop": _p_nop,
    "mov": _p_mov,
    "clr": _p_clr,
    "li": _p_li,
    "la": _p_la,
    "laa": _p_laa,
    "ldgp": _p_ldgp,
    "call": _p_call,
    "negq": _p_negq,
    "not": _p_not,
}


def _split_top(args: str) -> list[str]:
    from .parser import _split_operands
    return _split_operands(args)


def _parse_string(args: str, line_no: int) -> bytes:
    args = args.strip()
    if len(args) < 2 or args[0] != '"' or args[-1] != '"':
        raise AsmSyntaxError("string literal expected", line_no)
    body = args[1:-1]
    out = bytearray()
    i = 0
    escapes = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, '"': 34, "'": 39}
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            if i + 1 >= len(body):
                raise AsmSyntaxError("dangling escape in string", line_no)
            nxt = body[i + 1]
            if nxt == "x":
                out.append(int(body[i + 2:i + 4], 16))
                i += 4
                continue
            if nxt not in escapes:
                raise AsmSyntaxError(f"bad escape \\{nxt}", line_no)
            out.append(escapes[nxt])
            i += 2
        else:
            out.append(ord(ch))
            i += 1
    return bytes(out)
