"""``wrl-as``: command-line front end for the assembler."""

from __future__ import annotations

import argparse
import sys

from .assembler import assemble
from .parser import AsmSyntaxError


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="wrl-as",
                                 description="WRL-64 assembler")
    ap.add_argument("source", help="assembly source file")
    ap.add_argument("-o", "--output", required=True, help="output WOF module")
    args = ap.parse_args(argv)
    with open(args.source) as f:
        text = f.read()
    try:
        module = assemble(text, name=args.source)
    except AsmSyntaxError as exc:
        print(f"wrl-as: {args.source}: {exc}", file=sys.stderr)
        return 1
    module.save(args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
