"""Binary encoding and decoding of WRL-64 instructions.

Every instruction is one little-endian 32-bit word:

=========  =======================================================
format     bit layout (msb..lsb)
=========  =======================================================
memory     opcode[31:26] ra[25:21] rb[20:16] disp[15:0]
branch     opcode[31:26] ra[25:21] disp[20:0]
jump       opcode[31:26] ra[25:21] rb[20:16] hint[15:0]
operate    opcode[31:26] ra[25:21] rb[20:16] lit-or-zero[15:13]
           islit[12] func[11:5] rc[4:0]
           (when islit, the 8-bit literal occupies bits [20:13])
system     opcode[31:26] imm[25:0]
=========  =======================================================

Displacements are signed two's complement.  Branch displacements are in
units of instruction words relative to the updated pc (pc + 4), exactly as
on the Alpha; the signed 21-bit field gives a +/-4 MB reach, which is why
ATOM must choose between a pc-relative ``bsr`` and a full-address ``jsr``
when it inserts analysis calls.
"""

from __future__ import annotations

import struct

from . import opcodes
from .instruction import Instruction
from .opcodes import Format

INST_SIZE = 4

BRANCH_DISP_BITS = 21
BRANCH_DISP_MIN = -(1 << (BRANCH_DISP_BITS - 1))
BRANCH_DISP_MAX = (1 << (BRANCH_DISP_BITS - 1)) - 1

MEM_DISP_BITS = 16
MEM_DISP_MIN = -(1 << (MEM_DISP_BITS - 1))
MEM_DISP_MAX = (1 << (MEM_DISP_BITS - 1)) - 1

LIT_MAX = 0xFF


class EncodingError(ValueError):
    """An instruction's fields do not fit its encoding."""


def _signed(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` of ``value``."""
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _check_signed(value: int, bits: int, what: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"{what} {value} does not fit in {bits} signed bits")
    return value & ((1 << bits) - 1)


def branch_reach_ok(disp_words: int) -> bool:
    """True when a branch-format word displacement fits the 21-bit field."""
    return BRANCH_DISP_MIN <= disp_words <= BRANCH_DISP_MAX


def encode(inst: Instruction) -> int:
    """Pack an :class:`Instruction` into its 32-bit word."""
    op = inst.op
    word = op.opcode << 26
    if op.format is Format.MEMORY:
        word |= (inst.ra & 31) << 21
        word |= (inst.rb & 31) << 16
        word |= _check_signed(inst.disp, 16, "memory displacement")
    elif op.format is Format.BRANCH:
        word |= (inst.ra & 31) << 21
        word |= _check_signed(inst.disp, 21, "branch displacement")
    elif op.format is Format.JUMP:
        word |= (inst.ra & 31) << 21
        word |= (inst.rb & 31) << 16
    elif op.format is Format.OPERATE:
        word |= (inst.ra & 31) << 21
        word |= (inst.rc & 31)
        if inst.is_lit:
            if not 0 <= inst.lit <= LIT_MAX:
                raise EncodingError(f"literal {inst.lit} does not fit in 8 bits")
            word |= (inst.lit & 0xFF) << 13
            word |= 1 << 12
        else:
            word |= (inst.rb & 31) << 16
    elif op.format is Format.SYSTEM:
        if not 0 <= inst.imm < (1 << 26):
            raise EncodingError(f"system immediate {inst.imm} out of range")
        word |= inst.imm
    else:  # pragma: no cover - exhaustive over Format
        raise AssertionError(op.format)
    return word


def decode(word: int) -> Instruction:
    """Unpack a 32-bit word into an :class:`Instruction`."""
    opcode = (word >> 26) & 0x3F
    op = opcodes.BY_OPCODE.get(opcode)
    if op is None:
        raise EncodingError(f"illegal opcode 0x{opcode:02x} in word 0x{word:08x}")
    ra = (word >> 21) & 31
    if op.format is Format.MEMORY:
        return Instruction(op, ra=ra, rb=(word >> 16) & 31,
                           disp=_signed(word, 16))
    if op.format is Format.BRANCH:
        return Instruction(op, ra=ra, disp=_signed(word, 21))
    if op.format is Format.JUMP:
        return Instruction(op, ra=ra, rb=(word >> 16) & 31)
    if op.format is Format.OPERATE:
        rc = word & 31
        if word & (1 << 12):
            return Instruction(op, ra=ra, lit=(word >> 13) & 0xFF,
                               is_lit=True, rc=rc)
        return Instruction(op, ra=ra, rb=(word >> 16) & 31, rc=rc)
    if op.format is Format.SYSTEM:
        return Instruction(op, imm=word & ((1 << 26) - 1))
    raise AssertionError(op.format)  # pragma: no cover


def encode_stream(insts: list[Instruction]) -> bytes:
    """Encode a sequence of instructions into little-endian bytes."""
    return b"".join(struct.pack("<I", encode(i)) for i in insts)


def decode_stream(data: bytes) -> list[Instruction]:
    """Decode little-endian bytes into instructions."""
    if len(data) % INST_SIZE:
        raise EncodingError("text length is not a multiple of 4 bytes")
    return [decode(w) for (w,) in struct.iter_unpack("<I", data)]
