"""WRL-64: the synthetic Alpha-like ISA this reproduction targets."""

from . import const, encoding, opcodes, registers
from .instruction import Instruction, nop

__all__ = ["const", "encoding", "opcodes", "registers", "Instruction", "nop"]
