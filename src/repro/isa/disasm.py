"""Disassembler for WRL-64 text segments.

Used by the CLI tools, by test diagnostics, and by ATOM's debug dumps of
instrumented executables.  When given a symbol map, branch targets and
procedure entries are annotated with names.
"""

from __future__ import annotations

from . import encoding, registers
from .instruction import Instruction
from .opcodes import Format, InstClass


def branch_target(inst: Instruction, pc: int) -> int | None:
    """Absolute target of a pc-relative branch at address ``pc``."""
    if inst.op.format is Format.BRANCH:
        return pc + 4 + 4 * inst.disp
    return None


def render(inst: Instruction, pc: int,
           symbols: dict[int, str] | None = None) -> str:
    """Render one instruction at ``pc`` as assembly text."""
    r = registers.reg_name
    op = inst.op
    if op.format is Format.BRANCH:
        target = branch_target(inst, pc)
        label = ""
        if symbols and target in symbols:
            label = f" <{symbols[target]}>"
        if inst.ra == registers.ZERO and op.inst_class is not InstClass.CALL:
            return f"{op.mnemonic} {target:#x}{label}"
        return f"{op.mnemonic} {r(inst.ra)}, {target:#x}{label}"
    return str(inst)


def disassemble(text: bytes, base: int,
                symbols: dict[int, str] | None = None,
                annotate=None) -> list[str]:
    """Disassemble a text segment into annotated lines.

    ``annotate``, when given, is called with each instruction's address
    and may return a string to place in a left margin column before the
    address (profilers overlay per-PC sample counts this way); ``None``
    leaves the margin blank.  Label lines are not annotated.
    """
    lines = []
    for i, inst in enumerate(encoding.decode_stream(text)):
        pc = base + 4 * i
        prefix = ""
        if symbols and pc in symbols:
            prefix = f"{symbols[pc]}:\n"
        margin = ""
        if annotate is not None:
            margin = annotate(pc) or ""
        lines.append(f"{prefix}{margin}  {pc:#010x}:  "
                     f"{render(inst, pc, symbols)}")
    return lines


def symbol_map(module) -> dict[int, str]:
    """Build an address -> name map from a linked module's symbol table.

    When several symbols share an address, procedure (FUNC) symbols win:
    ATOM's ``__atominl$`` inline-splice markers may land on the first
    instruction of a procedure, and the procedure name is the better
    label there.  (Duck-typed on ``sym.kind`` to keep this module free of
    an objfile import.)
    """
    out: dict[int, str] = {}
    for sym in module.symtab:
        if not sym.defined or sym.is_abs:
            continue
        is_func = getattr(getattr(sym, "kind", None), "value", "") == "func"
        if sym.value not in out or is_func:
            out.setdefault(sym.value, sym.name)
            if is_func:
                out[sym.value] = sym.name
    return out
