"""Materializing integer constants into registers.

The paper prices argument setup by constant width: a 16-bit constant takes
one instruction, a 32-bit constant two, a 64-bit program counter three, and
so on.  This module implements that ladder for WRL-64 (``lda``,
``ldah``+``lda``, then a shifted high half) and is shared by the
assembler's ``li`` pseudo-instruction and ATOM's call-site lowering.
"""

from __future__ import annotations

from . import opcodes, registers
from .instruction import Instruction

_MASK64 = (1 << 64) - 1


def sext16(value: int) -> int:
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value


def split_hi_lo(value: int) -> tuple[int, int]:
    """Split a signed-32-bit-representable value for an ldah/lda pair.

    Returns (hi, lo) with ``(hi << 16) + sext16(lo) == value`` where both
    halves fit their signed 16-bit fields.  The +0x8000 carry adjustment
    compensates for lda sign-extending its displacement.
    """
    if not -(1 << 31) <= value < (1 << 31):
        raise ValueError(f"value does not fit in 32 signed bits: {value}")
    lo = sext16(value)
    hi = (value - lo) >> 16
    if not -(1 << 15) <= hi < (1 << 15):
        raise ValueError(f"no hi16/lo16 split for {value:#x}")
    return hi, lo


def fits_signed(value: int, bits: int) -> bool:
    return -(1 << (bits - 1)) <= value < (1 << (bits - 1))


def to_signed64(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value & (1 << 63) else value


def materialize(value: int, rd: int) -> list[Instruction]:
    """Return the shortest instruction sequence setting ``rd = value``.

    ``value`` may be given signed or as a raw 64-bit pattern; it is
    canonicalized to the signed interpretation of its low 64 bits.
    """
    value = to_signed64(value)
    if fits_signed(value, 16):
        return [Instruction(opcodes.LDA, ra=rd, rb=registers.ZERO, disp=value)]
    if fits_signed(value, 32):
        try:
            hi, lo = split_hi_lo(value)
        except ValueError:
            # Values just under 2**31 (e.g. 0x7fffffff) have no signed
            # hi16/lo16 split; fall through to the general ladder.
            pass
        else:
            out = [Instruction(opcodes.LDAH, ra=rd, rb=registers.ZERO,
                               disp=hi)]
            if lo:
                out.append(Instruction(opcodes.LDA, ra=rd, rb=rd, disp=lo))
            return out
    # General 64-bit: peel the low 32 bits as ldah/lda addends, build the
    # remaining high part, shift it up, then apply the addends.
    lo = sext16(value)
    v1 = value - lo
    hi = sext16((v1 >> 16) & 0xFFFF)
    v2 = v1 - (hi << 16)
    assert v2 & 0xFFFF_FFFF == 0
    # Only the low 32 bits of the high half matter mod 2**64, so wrap them
    # into signed-32 range (the lda/ldah addends may have carried past it).
    top = (v2 >> 32) & 0xFFFF_FFFF
    if top & 0x8000_0000:
        top -= 1 << 32
    out = materialize(top, rd)
    out.append(Instruction(opcodes.SLL, ra=rd, lit=32, is_lit=True, rc=rd))
    if hi:
        out.append(Instruction(opcodes.LDAH, ra=rd, rb=rd, disp=hi))
    if lo:
        out.append(Instruction(opcodes.LDA, ra=rd, rb=rd, disp=lo))
    return out


def cost(value: int) -> int:
    """Number of instructions :func:`materialize` would emit."""
    return len(materialize(value, registers.AT))
