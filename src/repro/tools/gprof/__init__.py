"""gprof: call-graph based profiling.

Instruments each procedure entry (call counting with caller attribution
via a shadow stack) and each basic block (time attribution by instruction
counts) — two arguments per point, as in Figure 6.
"""

from ...atom import BlockBefore, ProcAfter, ProcBefore, ProgramAfter, ProgramBefore

DESCRIPTION = "call graph based profiling tool"
POINTS = "each procedure/each basic block"
ARGS = 2
OUTPUT_FILE = "gprof.out"


def Instrument(iargc, iargv, atom):
    atom.AddCallProto("GprofInit(int)")
    atom.AddCallProto("ProcEnter(int, long)")
    atom.AddCallProto("ProcExit(int, int)")
    atom.AddCallProto("BlockExec(int, int)")
    atom.AddCallProto("ProcName(int, char *)")
    atom.AddCallProto("GprofReport()")
    procs = list(atom.procs())
    atom.AddCallProgram(ProgramBefore, "GprofInit", len(procs))
    for pid, p in enumerate(procs):
        atom.AddCallProgram(ProgramBefore, "ProcName", pid,
                            atom.ProcName(p))
        atom.AddCallProc(p, ProcBefore, "ProcEnter", pid, atom.ProcPC(p))
        atom.AddCallProc(p, ProcAfter, "ProcExit", pid, 0)
        for b in atom.blocks(p):
            atom.AddCallBlock(b, BlockBefore, "BlockExec", pid,
                              atom.GetBlockInstCount(b))
    atom.AddCallProgram(ProgramAfter, "GprofReport")
