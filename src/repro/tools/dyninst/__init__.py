"""dyninst: dynamic instruction counts.

The Pixie-style basic-block counter of the paper's introduction: every
basic block is instrumented with (block index, instruction count, PC).
"""

from ...atom import BlockBefore, ProgramAfter, ProgramBefore

DESCRIPTION = "computes dynamic instruction counts"
POINTS = "each basic block"
ARGS = 3
OUTPUT_FILE = "dyninst.out"


def Instrument(iargc, iargv, atom):
    atom.AddCallProto("DynInit(int)")
    atom.AddCallProto("BlockHit(int, int, long)")
    atom.AddCallProto("DynReport()")
    nblocks = 0
    for p in atom.procs():
        for b in atom.blocks(p):
            atom.AddCallBlock(b, BlockBefore, "BlockHit", nblocks,
                              atom.GetBlockInstCount(b), atom.BlockPC(b))
            nblocks += 1
    atom.AddCallProgram(ProgramBefore, "DynInit", nblocks)
    atom.AddCallProgram(ProgramAfter, "DynReport")
