"""pipe: pipeline stall tool.

Performs *static* pipeline scheduling of every basic block at
instrumentation time — which is why it is by far the slowest tool to
instrument with in Figure 5 — and adds a two-argument call per block so
the analysis routines can weight the static stall counts by execution
frequency.

The static model is a dual-issue in-order pipeline, scheduled properly:
a register/memory dependence DAG is built for the block and list-scheduled
by critical-path priority onto two issue slots (at most one memory
operation and one control transfer per cycle).  This per-block scheduling
is real work at instrumentation time — which is exactly why the paper's
Figure 5 shows pipe taking roughly twice as long as any other tool to
instrument the suite.
"""

from ...atom import BlockBefore, ProgramAfter

DESCRIPTION = "pipeline stall tool"
POINTS = "each basic block"
ARGS = 2
OUTPUT_FILE = "pipe.out"

_ISSUE_WIDTH = 2


def _build_dag(atom, block):
    """Dependence DAG: RAW edges carry the producer's latency, WAW/WAR
    and memory-order edges one cycle."""
    insts = block.insts
    n = len(insts)
    succs: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    preds: list[int] = [0] * n
    last_def: dict[int, int] = {}
    last_uses: dict[int, list[int]] = {}
    last_mem: int | None = None

    def edge(src: int, dst: int, latency: int) -> None:
        succs[src].append((dst, latency))
        preds[dst] += 1

    for i, ir in enumerate(insts):
        inst = ir.inst
        latency_of = atom.InstCycles
        for reg in inst.uses():
            if reg in last_def:
                edge(last_def[reg], i, latency_of(insts[last_def[reg]]))
            last_uses.setdefault(reg, []).append(i)
        for reg in inst.defs():
            if reg in last_def:
                edge(last_def[reg], i, 1)                   # WAW
            for user in last_uses.get(reg, ()):
                if user != i:
                    edge(user, i, 1)                        # WAR
            last_def[reg] = i
            last_uses[reg] = []
        if inst.is_memory_ref() or inst.is_syscall():
            if last_mem is not None:
                edge(last_mem, i, 1)                        # memory order
            last_mem = i
        if inst.ends_block() and i != n - 1:
            edge(i, n - 1, 1)       # keep the terminator last (paranoia)
    return succs, preds


def _critical_heights(atom, block, succs):
    insts = block.insts
    heights = [0] * len(insts)
    for i in range(len(insts) - 1, -1, -1):
        base = atom.InstCycles(insts[i])
        best = 0
        for dst, latency in succs[i]:
            best = max(best, heights[dst] + latency)
        heights[i] = base + best
    return heights


def _static_schedule(atom, block, width: int = _ISSUE_WIDTH) \
        -> tuple[int, int]:
    """List-schedule the block; returns (total cycles, stall cycles)."""
    insts = block.insts
    n = len(insts)
    if n == 0:
        return 0, 0
    succs, preds = _build_dag(atom, block)
    heights = _critical_heights(atom, block, succs)
    earliest = [0] * n
    remaining = list(range(n))
    scheduled_at = [0] * n
    done = 0
    cycle = 0
    while done < n:
        issued = 0
        memory_used = False
        branch_used = False
        ready = sorted((i for i in remaining
                        if preds[i] == 0 and earliest[i] <= cycle),
                       key=lambda i: -heights[i])
        for i in ready:
            if issued >= width:
                break
            inst = insts[i].inst
            if inst.is_memory_ref() and memory_used:
                continue
            if inst.ends_block() and branch_used:
                continue
            memory_used = memory_used or inst.is_memory_ref()
            branch_used = branch_used or inst.ends_block()
            scheduled_at[i] = cycle
            remaining.remove(i)
            for dst, latency in succs[i]:
                preds[dst] -= 1
                earliest[dst] = max(earliest[dst], cycle + latency)
            issued += 1
            done += 1
        cycle += 1
    total = cycle
    ideal = (n + width - 1) // width
    return total, max(0, total - ideal)


def Instrument(iargc, iargv, atom):
    atom.AddCallProto("PipeBlock(int, int)")
    atom.AddCallProto("PipeReport()")
    for p in atom.procs():
        for b in atom.blocks(p):
            # Two full schedules per block — dual-issue and single-issue —
            # so the analysis can report the machine's issue-width payoff
            # alongside the stall accounting.
            dual, _stalls = _static_schedule(atom, b, width=2)
            single, _ = _static_schedule(atom, b, width=1)
            atom.AddCallBlock(b, BlockBefore, "PipeBlock", dual, single)
    atom.AddCallProgram(ProgramAfter, "PipeReport")
