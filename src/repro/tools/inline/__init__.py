"""inline: find potential inlining call sites.

Instruments only procedure call sites (one argument, the site index) —
the paper's cheapest instruction-level tool (1.03x in Figure 6).
"""

from ...atom import InstBefore, InstTypeCall, ProgramAfter, ProgramBefore

DESCRIPTION = "finds potential inlining call sites"
POINTS = "each call site"
ARGS = 1
OUTPUT_FILE = "inline.out"


def Instrument(iargc, iargv, atom):
    atom.AddCallProto("InlineInit(int)")
    atom.AddCallProto("CallSite(int)")
    atom.AddCallProto("SiteInfo(int, long, char *)")
    atom.AddCallProto("InlineReport()")
    nsites = 0
    sites = []
    for p in atom.procs():
        for b in atom.blocks(p):
            inst = atom.GetLastInst(b)
            if inst is not None and atom.IsInstType(inst, InstTypeCall):
                atom.AddCallInst(inst, InstBefore, "CallSite", nsites)
                target = atom.InstBranchTarget(inst)
                sites.append((nsites, atom.InstPC(inst),
                              target if target is not None else 0))
                nsites += 1
    atom.AddCallProgram(ProgramBefore, "InlineInit", nsites)
    for sid, pc, target in sites:
        atom.AddCallProgram(ProgramBefore, "SiteInfo", sid, pc,
                            f"0x{target:x}" if target else "indirect")
    atom.AddCallProgram(ProgramAfter, "InlineReport")
