"""The eleven analysis tools of the paper's evaluation (Figures 5 and 6).

========  ==========================================  ======================
tool      description (paper Figure 5)                instrumentation points
========  ==========================================  ======================
branch    prediction using 2-bit history table        each conditional branch
cache     model direct mapped 8k byte cache           each memory reference
dyninst   computes dynamic instruction counts         each basic block
gprof     call graph based profiling tool             each procedure / block
inline    finds potential inlining call sites         each call site
io        input/output summary tool                   before/after write
malloc    histogram of dynamic memory                 before/after malloc
pipe      pipeline stall tool                         each basic block
prof      instruction profiling tool                  each procedure / block
syscall   system call summary tool                    before/after each syscall
unalign   unalign access tool                         each memory reference*
========  ==========================================  ======================

(*) the original unalign tool worked per basic block; ours instruments each
multi-byte non-stack memory reference — see EXPERIMENTS.md.

Beyond the paper's eleven, ``taint`` is a byte-granular taint-propagation
tool (shadow memory + shadow register file, the densest instrumentation
regime the substrate carries: every load, store, ALU op and syscall) —
see DESIGN.md §10.

Each tool is a subpackage with an ``Instrument`` routine (Python, run at
instrumentation time) and an ``analysis.mlc`` file (the analysis routines,
compiled and linked into the instrumented executable's address space).
"""

from __future__ import annotations

import importlib
import importlib.resources as resources
from dataclasses import dataclass

TOOL_NAMES = ("branch", "cache", "dyninst", "gprof", "inline", "io",
              "malloc", "pipe", "prof", "syscall", "taint", "unalign")


@dataclass(frozen=True)
class Tool:
    name: str
    instrument: object          # Instrument(iargc, iargv, atom)
    analysis_source: str        # MLC text
    description: str
    points: str                 # instrumentation points, for Figure 6
    args: int                   # arguments passed per point, for Figure 6
    output_file: str            # report the analysis routines write


def get_tool(name: str) -> Tool:
    """Load one tool by name."""
    if name not in TOOL_NAMES:
        raise KeyError(f"unknown tool {name!r}; available: {TOOL_NAMES}")
    module = importlib.import_module(f"{__name__}.{name}")
    source = resources.files(f"{__name__}.{name}") \
        .joinpath("analysis.mlc").read_text()
    return Tool(
        name=name,
        instrument=module.Instrument,
        analysis_source=source,
        description=module.DESCRIPTION,
        points=module.POINTS,
        args=module.ARGS,
        output_file=module.OUTPUT_FILE,
    )


def all_tools() -> list[Tool]:
    """All tools (the paper's eleven plus taint), alphabetical."""
    return [get_tool(name) for name in TOOL_NAMES]
