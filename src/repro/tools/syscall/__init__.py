"""syscall: system call summary.

Instruments before and after every system-call instruction; the syscall
number is read from v0 at run time via REGV (two arguments per point).
"""

from ...atom import InstAfter, InstBefore, InstTypeSyscall, ProgramAfter
from ...isa import registers as R

DESCRIPTION = "system call summary tool"
POINTS = "before/after each system call"
ARGS = 2
OUTPUT_FILE = "syscall.out"


def Instrument(iargc, iargv, atom):
    atom.AddCallProto("SysBefore(REGV, int)")
    atom.AddCallProto("SysAfter(REGV, int)")
    atom.AddCallProto("SysReport()")
    site = 0
    for p in atom.procs():
        # ATOM must not hook the termination syscall *after* it fires,
        # and _exit never returns; the before-hook still counts it.
        for ir in atom.insts(p):
            if atom.IsInstType(ir, InstTypeSyscall):
                atom.AddCallInst(ir, InstBefore, "SysBefore", R.V0, site)
                if p.name != "_exit":
                    atom.AddCallInst(ir, InstAfter, "SysAfter", R.V0,
                                     site)
                site += 1
    atom.AddCallProgram(ProgramAfter, "SysReport")
