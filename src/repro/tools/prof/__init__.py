"""prof: instruction profiling.

Attributes dynamic instruction counts to procedures via per-block
two-argument calls (procedure index, block instruction count).
"""

from ...atom import BlockBefore, ProgramAfter, ProgramBefore

DESCRIPTION = "instruction profiling tool"
POINTS = "each procedure/each basic block"
ARGS = 2
OUTPUT_FILE = "prof.out"


def Instrument(iargc, iargv, atom):
    atom.AddCallProto("ProfInit(int)")
    atom.AddCallProto("ProfName(int, char *)")
    atom.AddCallProto("ProfBlock(int, int)")
    atom.AddCallProto("ProfReport()")
    procs = list(atom.procs())
    atom.AddCallProgram(ProgramBefore, "ProfInit", len(procs))
    for pid, p in enumerate(procs):
        atom.AddCallProgram(ProgramBefore, "ProfName", pid,
                            atom.ProcName(p))
        for b in atom.blocks(p):
            atom.AddCallBlock(b, BlockBefore, "ProfBlock", pid,
                              atom.GetBlockInstCount(b))
    atom.AddCallProgram(ProgramAfter, "ProfReport")
