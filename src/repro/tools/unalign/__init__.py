"""unalign: unaligned access tool.

Instruments multi-byte memory references whose base register is not the
stack pointer (stack slots are aligned by construction) with three
arguments: the effective address, the access size, and the original PC.
The analysis routines flag accesses that would trap on an
alignment-checking machine.
"""

from ...atom import EffAddrValue, InstBefore, InstTypeMemRef, ProgramAfter
from ...isa import registers as R

DESCRIPTION = "unalign access tool"
POINTS = "each memory reference"
ARGS = 3
OUTPUT_FILE = "unalign.out"


def Instrument(iargc, iargv, atom):
    atom.AddCallProto("Access(VALUE, int, long)")
    atom.AddCallProto("UnalignReport()")
    for p in atom.procs():
        for ir in atom.insts(p):
            if not atom.IsInstType(ir, InstTypeMemRef):
                continue
            size = atom.InstMemAccessSize(ir)
            if size < 2 or atom.InstMemBaseReg(ir) == R.SP:
                continue
            atom.AddCallInst(ir, InstBefore, "Access", EffAddrValue,
                             size, atom.InstPC(ir))
    atom.AddCallProgram(ProgramAfter, "UnalignReport")
