"""io: input/output summary.

Instruments the application's write and read library procedures (four
REGV arguments capture fd, buffer, count, and a direction flag) — a
procedure-level tool with negligible run-time cost (1.01x in Figure 6).
"""

from ...atom import ProcBefore, ProgramAfter
from ...isa import registers as R

DESCRIPTION = "input/output summary tool"
POINTS = "before/after write procedure"
ARGS = 4
OUTPUT_FILE = "io.out"


def Instrument(iargc, iargv, atom):
    atom.AddCallProto("IoCall(REGV, REGV, REGV, int)")
    atom.AddCallProto("IoReport()")
    for name, direction in (("write", 0), ("read", 1)):
        proc = atom.GetNamedProc(name)
        if proc is not None:
            # At entry: a0 = fd, a1 = buf, a2 = count.
            atom.AddCallProc(proc, ProcBefore, "IoCall",
                             R.A0, R.A1, R.A2, direction)
    atom.AddCallProgram(ProgramAfter, "IoReport")
