"""cache: model a direct-mapped 8 KB data cache.

Instruments every memory reference (load and store) with one argument, the
effective address — the paper's canonical heavy tool (11.84x in Figure 6).
"""

from ...atom import EffAddrValue, InstBefore, InstTypeMemRef, ProgramAfter

DESCRIPTION = "model direct mapped 8k byte cache"
POINTS = "each memory reference"
ARGS = 1
OUTPUT_FILE = "cache.out"


def Instrument(iargc, iargv, atom):
    atom.AddCallProto("Reference(VALUE)")
    atom.AddCallProto("CacheReport()")
    for p in atom.procs():
        for b in atom.blocks(p):
            for inst in atom.insts(b):
                if atom.IsInstType(inst, InstTypeMemRef):
                    atom.AddCallInst(inst, InstBefore, "Reference",
                                     EffAddrValue)
    atom.AddCallProgram(ProgramAfter, "CacheReport")
