"""malloc: histogram of dynamic memory allocation.

The paper's fastest-to-build tool: it "simply asks for the malloc
procedure and instruments it" — one point, one REGV argument (the
requested size in a0 at procedure entry).
"""

from ...atom import ProcBefore, ProgramAfter
from ...isa import registers as R

DESCRIPTION = "histogram of dynamic memory"
POINTS = "before/after malloc procedure"
ARGS = 1
OUTPUT_FILE = "malloc.out"


def Instrument(iargc, iargv, atom):
    atom.AddCallProto("MallocCall(REGV)")
    atom.AddCallProto("MallocReport()")
    proc = atom.GetNamedProc("malloc")
    if proc is not None:
        atom.AddCallProc(proc, ProcBefore, "MallocCall", R.A0)
    atom.AddCallProgram(ProgramAfter, "MallocReport")
