"""Reference model of the taint tool's shadow memory.

``analysis.mlc`` implements the shadow table in MLC inside the
instrumented executable; this is the same structure in plain Python — a
page-sparse directory of byte-granular taint flags and per-byte origin
pcs, with strong-update store semantics.  The hypothesis suite in
``tests/tools/test_taint_shadow.py`` drives both this model and flat
reference dicts over overlapping mixed-width traffic, and the
cross-validation test compares the *instrumented executable's* report
against this model's prediction, so the MLC and Python implementations
check each other.
"""

from __future__ import annotations

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT

#: Pages the directory covers (matches analysis.mlc): 256 MB, every
#: address the loader lays out.  Accesses beyond are silently ignored,
#: exactly as the MLC routines do.
DIR_PAGES = 65536


class ShadowMemory:
    """Byte-granular taint flags + origin pcs behind a sparse page table."""

    def __init__(self) -> None:
        self._flags: dict[int, bytearray] = {}
        self._origs: dict[int, list[int]] = {}
        self.tainted_bytes = 0

    # ---- byte primitives ----------------------------------------------

    def _page_for(self, addr: int) -> int | None:
        page = addr >> PAGE_SHIFT
        return page if 0 <= page < DIR_PAGES else None

    def set_byte(self, addr: int, taint: int, pc: int) -> None:
        """Strong update: the byte takes ``taint``; when tainted, its
        origin becomes ``pc`` (the writer of its current value)."""
        page = self._page_for(addr)
        if page is None:
            return
        if taint:
            flags = self._flags.get(page)
            if flags is None:
                flags = self._flags[page] = bytearray(PAGE_SIZE)
                self._origs[page] = [0] * PAGE_SIZE
            off = addr & (PAGE_SIZE - 1)
            if not flags[off]:
                flags[off] = 1
                self.tainted_bytes += 1
            self._origs[page][off] = pc
        else:
            flags = self._flags.get(page)
            if flags is None:
                return
            off = addr & (PAGE_SIZE - 1)
            if flags[off]:
                flags[off] = 0
                self._origs[page][off] = 0
                self.tainted_bytes -= 1

    def get_byte(self, addr: int) -> int:
        page = self._page_for(addr)
        if page is None:
            return 0
        flags = self._flags.get(page)
        return flags[addr & (PAGE_SIZE - 1)] if flags is not None else 0

    def origin(self, addr: int) -> int:
        page = self._page_for(addr)
        if page is None:
            return 0
        origs = self._origs.get(page)
        return origs[addr & (PAGE_SIZE - 1)] if origs is not None else 0

    # ---- access-width operations (what the tool's callbacks do) -------

    def store(self, addr: int, size: int, taint: int, pc: int) -> None:
        """A ``size``-byte store of a register with taint ``taint``."""
        for i in range(size):
            self.set_byte(addr + i, 1 if taint else 0, pc)

    def load(self, addr: int, size: int) -> int:
        """Taint of a ``size``-byte load: OR over the covered bytes."""
        taint = 0
        for i in range(size):
            taint |= self.get_byte(addr + i)
        return taint

    def fill(self, start: int, length: int, origin: int = 0) -> None:
        """Taint a source range (argv/stdin/declared range)."""
        for a in range(start, start + length):
            self.set_byte(a, 1, origin)

    def wipe(self, start: int, length: int) -> None:
        """Clear a range (fresh sbrk memory carries no taint)."""
        for a in range(start, start + length):
            self.set_byte(a, 0, 0)

    # ---- report view ---------------------------------------------------

    def ranges(self) -> list[tuple[int, int]]:
        """Coalesced ``(start, length)`` runs of tainted bytes, sorted —
        the map the MLC report prints."""
        out: list[tuple[int, int]] = []
        start = length = None
        for page in sorted(self._flags):
            flags = self._flags[page]
            base = page << PAGE_SHIFT
            for off in range(PAGE_SIZE):
                if not flags[off]:
                    continue
                a = base + off
                if start is not None and a == start + length:
                    length += 1
                else:
                    if start is not None:
                        out.append((start, length))
                    start, length = a, 1
        if start is not None:
            out.append((start, length))
        return out


def parse_report(text: str) -> dict:
    """Parse a ``taint.out`` artifact into a comparable structure."""
    lines = text.splitlines()
    doc: dict = {"tainted": None, "map": [], "ranges": None, "sinks": {}}
    for line in lines:
        s = line.strip()
        if s.startswith("sources:"):
            doc["sources"] = s[len("sources:"):].strip()
        elif s.startswith("tainted bytes:"):
            doc["tainted"] = int(s.split(":")[1])
        elif s.startswith("0x") and "+" in s:
            addr, plus = s.split(" +")
            doc["map"].append((int(addr, 16), int(plus)))
        elif s.startswith("ranges:"):
            doc["ranges"] = int(s.split(":")[1])
        elif s.startswith("fd "):
            head, fields = s.split(":", 1)
            fd = int(head.split()[1])
            entry = doc["sinks"].setdefault(fd, {})
            for item in fields.split():
                k, v = item.split("=")
                entry[k] = int(v, 0)
    return doc
