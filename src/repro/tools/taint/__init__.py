"""taint: byte-granular dynamic taint propagation.

The heaviest instrumentation regime the substrate carries: every load,
store, ALU op, load-address op, register-writing control transfer and
system call gets a callback.  The analysis routines maintain

* a page-sparse shadow memory (one taint flag byte plus one origin pc
  per application byte, behind a page directory mirroring
  ``machine/memory.py``'s layout), and
* a shadow register file (one taint bit per architectural register).

Propagation policy (documented in DESIGN.md §10):

* register-to-register ops (OPERATE, lda/ldah) — destination taint is
  the union of the taint of every source register read (``uses()``);
  for cmov this conservatively includes the condition register;
* loads — destination taint is the OR of the shadow bytes covered by
  the access (address/base-register taint is *not* propagated);
* stores — strong update: every covered shadow byte takes the stored
  register's taint; a tainted byte remembers the pc of the store that
  wrote its current value (its origin);
* control transfers that write a register (bsr/jsr/ret link writes) —
  the link register is cleared (the return address is a constant);
* syscalls — v0 is cleared after the call; ``read`` from stdin taints
  the filled buffer when the stdin source is enabled; ``sbrk``/``sbrk2``
  clear shadow over the returned region (stale taint must not survive a
  shrink/regrow); ``write`` is the *sink*: the buffer is scanned and
  per-fd tainted-byte statistics recorded, including the pc of the
  first tainted write and the origin of its first tainted byte.

Taint sources are declared as tool arguments (``atom ... taint -- argv
stdin range:0x2000000:64``) or, when no arguments are given, via the
``WRL_TAINT_SOURCES`` environment variable; the default is
``argv stdin``.  The environment value is folded into the instrumentation
cache fingerprint via ``cache_fingerprint_extra`` so cached instrumented
executables can never go stale against the environment.

The report (``taint.out``) is deterministic: a coalesced map of tainted
address ranges plus the per-fd sink table, no timestamps, original pcs
only — byte-identical across opt levels, dispatch strategies and
serial/parallel evaluation.
"""

from __future__ import annotations

import os

from ...atom import (EffAddrValue, InstAfter, InstBefore, InstTypeCall,
                     InstTypeJump, InstTypeLoad, InstTypeRet,
                     InstTypeStore, InstTypeSyscall, InstTypeUncondBr,
                     ProgramAfter, ProgramBefore)
from ...isa import registers as R

DESCRIPTION = "byte-granular taint propagation tool"
POINTS = "each load/store/ALU op/reg-writing transfer/syscall"
ARGS = 5
OUTPUT_FILE = "taint.out"

#: sources applied when neither tool args nor environment specify any
DEFAULT_SOURCES = ("argv", "stdin")

ENV_VAR = "WRL_TAINT_SOURCES"


class TaintArgsError(ValueError):
    pass


def parse_sources(tokens):
    """``(argv, stdin, ranges)`` from source tokens.

    Tokens: ``argv``, ``stdin``, ``range:<start>:<len>`` (ints, any
    base), or ``none`` (explicitly no sources).
    """
    src_argv = False
    src_stdin = False
    ranges: list[tuple[int, int]] = []
    for tok in tokens:
        if tok == "argv":
            src_argv = True
        elif tok == "stdin":
            src_stdin = True
        elif tok == "none":
            pass
        elif tok.startswith("range:"):
            parts = tok.split(":")
            if len(parts) != 3:
                raise TaintArgsError(f"bad taint range {tok!r} "
                                     "(want range:<start>:<len>)")
            try:
                start, length = int(parts[1], 0), int(parts[2], 0)
            except ValueError as exc:
                raise TaintArgsError(f"bad taint range {tok!r}: {exc}") \
                    from None
            if start < 0 or length <= 0:
                raise TaintArgsError(f"bad taint range {tok!r}: start "
                                     "must be >= 0 and len > 0")
            ranges.append((start, length))
        else:
            raise TaintArgsError(
                f"unknown taint source {tok!r} "
                "(want argv, stdin, range:<start>:<len>, or none)")
    return src_argv, src_stdin, tuple(ranges)


def _sources_from(iargv):
    tokens = list(iargv[1:])
    if not tokens:
        tokens = os.environ.get(ENV_VAR, "").replace(",", " ").split()
    if not tokens:
        tokens = list(DEFAULT_SOURCES)
    return parse_sources(tokens)


def Instrument(iargc, iargv, atom):
    src_argv, src_stdin, ranges = _sources_from(iargv)

    atom.AddCallProto("TaintInit(int)")
    atom.AddCallProto("TaintArgv(REGV, REGV)")
    atom.AddCallProto("TaintRange(long, long)")
    # register-file transitions: straight-line bodies, inlinable at O4
    atom.AddCallProto("TaintClear(int)")
    atom.AddCallProto("TaintMov(int, int)")
    atom.AddCallProto("TaintAlu(int, int, int)")
    atom.AddCallProto("TaintAlu3(int, int, int, int)")
    # shadow-memory transitions
    atom.AddCallProto("TaintLoad(VALUE, int, int)")
    atom.AddCallProto("TaintStore(VALUE, int, int, long)")
    # syscall surface (sources, sinks, heap lifetime)
    atom.AddCallProto("TaintSysBefore(REGV, REGV, REGV, REGV, long)")
    atom.AddCallProto("TaintSysAfter(REGV)")
    atom.AddCallProto("TaintReport()")

    # TaintInit must run before any source call (it allocates the page
    # directory); ProgramBefore calls run in the order added.
    atom.AddCallProgram(ProgramBefore, "TaintInit",
                        1 if src_stdin else 0)
    if src_argv:
        # At ProgramBefore sites the veneer holds argc in s0 and argv in
        # s1 (a0/a1 may already be clobbered by the analysis libc init).
        atom.AddCallProgram(ProgramBefore, "TaintArgv", R.S0, R.S1)
    for start, length in ranges:
        atom.AddCallProgram(ProgramBefore, "TaintRange", start, length)

    for p in atom.procs():
        in_exit = atom.ProcName(p) == "_exit"
        for ir in atom.insts(p):
            if atom.IsInstType(ir, InstTypeLoad):
                dst = atom.InstRA(ir)
                if dst != R.ZERO:
                    atom.AddCallInst(ir, InstBefore, "TaintLoad",
                                     EffAddrValue,
                                     atom.InstMemAccessSize(ir), dst)
            elif atom.IsInstType(ir, InstTypeStore):
                # InstRA is the *stored* register (InstRegUses cannot
                # separate it from the base when they alias).
                atom.AddCallInst(ir, InstBefore, "TaintStore",
                                 EffAddrValue,
                                 atom.InstMemAccessSize(ir),
                                 atom.InstRA(ir), atom.InstPC(ir))
            elif atom.IsInstType(ir, InstTypeSyscall):
                # The termination syscall never returns: before-hook
                # only (matches the syscall tool).
                atom.AddCallInst(ir, InstBefore, "TaintSysBefore",
                                 R.V0, R.A0, R.A1, R.A2,
                                 atom.InstPC(ir))
                if not in_exit:
                    atom.AddCallInst(ir, InstAfter, "TaintSysAfter",
                                     R.V0)
            else:
                defs = atom.InstRegDefs(ir)
                if not defs:
                    continue            # cond branches, halt, stores
                (dst,) = defs
                if (atom.IsInstType(ir, InstTypeCall)
                        or atom.IsInstType(ir, InstTypeJump)
                        or atom.IsInstType(ir, InstTypeRet)
                        or atom.IsInstType(ir, InstTypeUncondBr)):
                    # link-register write: the return address is a
                    # constant, never tainted
                    atom.AddCallInst(ir, InstBefore, "TaintClear", dst)
                    continue
                srcs = sorted(atom.InstRegUses(ir))
                if not srcs:
                    atom.AddCallInst(ir, InstBefore, "TaintClear", dst)
                elif len(srcs) == 1:
                    if srcs[0] != dst:  # identity move is a no-op
                        atom.AddCallInst(ir, InstBefore, "TaintMov",
                                         dst, srcs[0])
                elif len(srcs) == 2:
                    atom.AddCallInst(ir, InstBefore, "TaintAlu",
                                     dst, srcs[0], srcs[1])
                else:                   # cmov reads ra, rb and old rc
                    atom.AddCallInst(ir, InstBefore, "TaintAlu3",
                                     dst, srcs[0], srcs[1], srcs[2])

    atom.AddCallProgram(ProgramAfter, "TaintReport")


def _cache_fingerprint_extra() -> str:
    """Environment the Instrument routine reads — folded into the
    instrumentation cache key by ``eval/runner.py`` so a cached
    instrumented executable is never reused under a different
    ``WRL_TAINT_SOURCES``."""
    return f"{ENV_VAR}={os.environ.get(ENV_VAR, '')}"


Instrument.cache_fingerprint_extra = _cache_fingerprint_extra
