"""branch: evaluate branch prediction with a 2-bit history table.

Instruments every conditional branch with three arguments (branch index,
run-time condition value, original PC) and simulates a classic 2-bit
saturating-counter predictor per branch in the analysis routines.
"""

from ...atom import BrCondValue, InstBefore, InstTypeCondBr, ProgramAfter, ProgramBefore

DESCRIPTION = "prediction using 2-bit history table"
POINTS = "each conditional branch"
ARGS = 3
OUTPUT_FILE = "branch.out"


def Instrument(iargc, iargv, atom):
    atom.AddCallProto("BranchInit(int)")
    atom.AddCallProto("CondBranch(int, VALUE, long)")
    atom.AddCallProto("BranchReport()")
    nbranch = 0
    p = atom.GetFirstProc()
    while p is not None:
        b = atom.GetFirstBlock(p)
        while b is not None:
            inst = atom.GetLastInst(b)
            if inst is not None and atom.IsInstType(inst, InstTypeCondBr):
                atom.AddCallInst(inst, InstBefore, "CondBranch",
                                 nbranch, BrCondValue, atom.InstPC(inst))
                nbranch += 1
            b = atom.GetNextBlock(b)
        p = atom.GetNextProc(p)
    atom.AddCallProgram(ProgramBefore, "BranchInit", nbranch)
    atom.AddCallProgram(ProgramAfter, "BranchReport")
