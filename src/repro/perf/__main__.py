"""``python -m repro.perf`` — run the benchmark harness."""

import sys

from .bench import main

sys.exit(main())
