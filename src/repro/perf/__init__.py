"""Performance measurement for the reproduction.

The interpreter is the floor under every Figure 5/6 number, so this
package gives it a persistent, machine-readable trajectory: the
:mod:`repro.perf.bench` harness times uninstrumented and instrumented
runs of the stock workloads and writes ``BENCH_interp.json`` at the repo
root for future changes to regress against.

Exports are re-exported lazily so ``python -m repro.perf.bench`` does
not import the module twice.
"""

__all__ = ["BENCH_SCHEMA", "default_report_path", "load_report",
           "run_bench", "validate_report"]


def __getattr__(name):
    if name in __all__:
        from . import bench
        return getattr(bench, name)
    raise AttributeError(name)
