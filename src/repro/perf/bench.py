"""The interpreter benchmark harness (``python -m repro.perf.bench``).

Three sections, one JSON report:

* ``interpreter`` — for each workload, an A/B/C of the region JIT, the
  superblock-fused dispatch, and the plain per-instruction loop.
  Architectural state (cycles, instruction count, exit status, stdout)
  is asserted bit-identical between the three before any number is
  reported.
* ``tools`` — for each (workload, tool, opt-level) cell, simulated
  cycles and wall-clock throughput of the uninstrumented and
  instrumented executables — the measured version of the paper's
  Figure 6 overhead story.
* ``serve`` — throughput of the warm ``wrl-serve`` daemon against the
  cold-process path (one fresh Python per request), plus the p50
  latency of a deduplicated burst: the case for
  instrumentation-as-a-service in numbers.

Simulated cycles are deterministic; wall-clock insts/sec is best-of-N
with a warmup run so lazy superblock compilation is excluded, the
standard JIT-benchmarking convention.  The report lands in
``BENCH_interp.json`` at the repo root so the trajectory is versioned
alongside the code that produced it.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from ..atom import OptLevel
from ..eval.parallel import plan_matrix, run_matrix
from ..machine import run_module
from ..obs import TRACE, trace_path_from_env
from ..tools import TOOL_NAMES
from ..workloads import WORKLOAD_NAMES, build_workload

BENCH_SCHEMA = "repro-bench-interp/v4"
#: Older schemas ``validate_report`` still accepts (reports written by
#: previous revisions remain comparable baselines).
ACCEPTED_SCHEMAS = ("repro-bench-interp/v1", "repro-bench-interp/v2",
                    "repro-bench-interp/v3", BENCH_SCHEMA)

#: Compact default matrix: enough signal to regress against without the
#: full 20x11x5 sweep (use --all for that).
DEFAULT_WORKLOADS = ("sieve", "matrix", "quick", "crc")
DEFAULT_TOOLS = ("dyninst", "prof", "taint")
DEFAULT_OPTS = ("O0", "O1", "O2", "O3", "O4")

#: --compare fails when a cell's excess cycles grow by more than this.
DEFAULT_THRESHOLD = 0.10

#: Separate tolerance for the interpreter insts/sec legs of --compare.
#: Those are wall-clock on a shared host: run-to-run swings of 20-30%
#: under background load are normal, so gating them at the
#: deterministic-cycle threshold just flakes.  This catches collapses
#: (a disabled fast path, an accidentally quadratic step), not jitter.
DEFAULT_IPS_THRESHOLD = 0.35

#: Absolute excess-cycle slack for --compare.  A cell whose baseline
#: excess is zero or negative (instrumentation measured as free on that
#: workload) has no meaningful relative limit; without a floor, any
#: nonzero excess there would gate as an infinite-percentage regression.
EXCESS_CYCLE_FLOOR = 100


def default_report_path() -> Path:
    """``BENCH_interp.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "BENCH_interp.json"


def _best_wall(module, *, fuse: bool, jit: bool, reps: int,
               max_insts=2_000_000_000):
    """(RunResult, best wall seconds) over ``reps`` timed runs + 1 warmup."""
    result = run_module(module, fuse=fuse, jit=jit,
                        max_insts=max_insts)             # warmup
    best = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = run_module(module, fuse=fuse, jit=jit,
                            max_insts=max_insts)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def measure_interpreter(workloads, reps: int = 3) -> dict:
    """Three-way jit/fused/simple dispatch A/B/C; asserts bit-identical
    state before any number is reported."""
    out = {}
    for name in workloads:
        module = build_workload(name)
        jitted, jit_s = _best_wall(module, fuse=True, jit=True, reps=reps)
        fused, fused_s = _best_wall(module, fuse=True, jit=False,
                                    reps=reps)
        simple, simple_s = _best_wall(module, fuse=False, jit=False,
                                      reps=reps)
        state = ("cycles", "inst_count", "status", "stdout")
        for field in state:
            if not (getattr(jitted, field) == getattr(fused, field)
                    == getattr(simple, field)):
                raise AssertionError(
                    f"{name}: jit, fused and per-instruction runs "
                    f"diverge on {field}")
        jit_ips = jitted.inst_count / jit_s
        fused_ips = fused.inst_count / fused_s
        simple_ips = simple.inst_count / simple_s
        out[name] = {
            "insts": fused.inst_count,
            "cycles": fused.cycles,
            "jit_ips": round(jit_ips),
            "fused_ips": round(fused_ips),
            "simple_ips": round(simple_ips),
            "speedup": round(fused_ips / simple_ips, 3),
            "jit_speedup": round(jit_ips / fused_ips, 3),
        }
    return out


def measure_tools(workloads, tools, opts, reps: int = 1,
                  jobs: int = 0) -> list[dict]:
    """Instrumented-vs-base cycles and throughput per matrix cell.

    Goes through the shard-aware eval pipeline: artifacts come from the
    on-disk cache when warm, and ``jobs>=1`` fans the cells out over
    worker processes (``0`` keeps the timing single-process, the
    least-noisy default for wall-clock numbers).
    """
    specs = plan_matrix(tools=tools, workloads=workloads, opts=opts,
                        reps=reps, warmup=True)
    rows = []
    for rec in run_matrix(specs, jobs=jobs):
        if rec.status != "ok":
            raise RuntimeError(
                f"bench cell {rec.workload}+{rec.tool}@{rec.opt} "
                f"failed: {rec.error}")
        rows.append({
            "workload": rec.workload,
            "tool": rec.tool,
            "opt": rec.opt,
            "base_cycles": rec.base_cycles,
            "instr_cycles": rec.instr_cycles,
            "cycle_overhead": round(rec.instr_cycles / rec.base_cycles, 3),
            "base_insts": rec.base_insts,
            "instr_insts": rec.instr_insts,
            "base_ips": round(rec.base_insts / rec.base_wall_s),
            "instr_ips": round(rec.instr_insts / rec.instr_wall_s),
        })
    return rows


def overhead_table(rows: list[dict]) -> dict:
    """Aggregate the tools matrix into the paper-style overhead table.

    Per (tool, opt): cycles and instructions summed over the measured
    workloads, instrumented vs uninstrumented, plus the derived overhead
    ratios — the simulated analogue of the paper's Figure 6 columns.
    ``excess_cycles`` (instrumented minus base) is what the regression
    gate compares: it isolates the instrumentation cost from the
    workload's own runtime.
    """
    acc: dict[str, dict[str, dict]] = {}
    for row in rows:
        cell = acc.setdefault(row["tool"], {}).setdefault(
            row["opt"], {"base_cycles": 0, "instr_cycles": 0,
                         "base_insts": 0, "instr_insts": 0})
        for key in ("base_cycles", "instr_cycles", "base_insts",
                    "instr_insts"):
            cell[key] += row[key]
    for per_opt in acc.values():
        for cell in per_opt.values():
            cell["excess_cycles"] = cell["instr_cycles"] \
                - cell["base_cycles"]
            cell["cycle_overhead"] = round(
                cell["instr_cycles"] / cell["base_cycles"], 3)
            cell["inst_overhead"] = round(
                cell["instr_insts"] / cell["base_insts"], 3)
    return acc


#: Workload for the serve section: small enough that daemon round-trip
#: overhead is visible in the numbers, big enough to be real work.
SERVE_WORKLOAD = "fib"
SERVE_WL_ARGS = ("15",)


def measure_serve(requests: int = 6, dup: int = 6,
                  jobs: int = 2) -> dict:
    """Warm-daemon vs cold-process throughput, and dedup-hit latency.

    * **cold** — each request is a fresh ``python -m repro.machine.cli``
      subprocess: full interpreter start + package imports per run, the
      pre-daemon cost model.
    * **warm** — the same requests against a live in-process daemon
      (sequential, so none dedup: every request executes).
    * **dedup** — a burst of ``dup`` *concurrent identical* requests;
      they coalesce onto one execution and the p50 per-request latency
      shows what a dedup hit costs.
    """
    import os
    import subprocess
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from ..serve.client import ServeClient
    from ..serve.daemon import DaemonThread
    from ..workloads import build_workload

    module = build_workload(SERVE_WORKLOAD)
    exe = module.to_bytes()
    with tempfile.TemporaryDirectory(prefix="wrl-bench-serve-") as tdir:
        exe_path = Path(tdir) / f"{SERVE_WORKLOAD}.wof"
        exe_path.write_bytes(exe)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2])
        env.pop("WRL_SERVER", None)

        t0 = time.perf_counter()
        for _ in range(requests):
            subprocess.run(
                [sys.executable, "-m", "repro.machine.cli",
                 str(exe_path), *SERVE_WL_ARGS],
                env=env, check=True, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL, stdin=subprocess.DEVNULL)
        cold_s = time.perf_counter() - t0

        sock = Path(tdir) / "serve.sock"
        with DaemonThread(socket_path=sock, jobs=jobs,
                          cache_root=Path(tdir) / "cache"):
            client = ServeClient(sock, timeout=600.0)
            client.run_exe(exe, args=SERVE_WL_ARGS)       # warmup
            t0 = time.perf_counter()
            for _ in range(requests):
                client.run_exe(exe, args=SERVE_WL_ARGS)
            warm_s = time.perf_counter() - t0

            before = client.stats()["dedup_hits"]
            lat: list[float] = []

            def one(_):
                t = time.perf_counter()
                client.run_exe(exe, args=SERVE_WL_ARGS)
                lat.append((time.perf_counter() - t) * 1000.0)

            with ThreadPoolExecutor(max_workers=dup) as tp:
                list(tp.map(one, range(dup)))
            dedup_hits = client.stats()["dedup_hits"] - before

    from ..obs import percentile
    cold_rps = requests / cold_s
    warm_rps = requests / warm_s
    return {
        "workload": SERVE_WORKLOAD,
        "requests": requests,
        "jobs": jobs,
        "cold_rps": round(cold_rps, 2),
        "warm_rps": round(warm_rps, 2),
        "speedup": round(warm_rps / cold_rps, 2),
        "dedup_burst": dup,
        "dedup_hits": dedup_hits,
        "dedup_latency_ms_p50": round(percentile(sorted(lat), 0.5), 2),
    }


def measure_serve_isolated() -> dict:
    """``measure_serve`` in a fresh subprocess.

    A full bench run accumulates a large heap before the serve section;
    forking daemon workers from it drags every measurement down with
    inherited GC pressure.  A real ``wrl-serve`` is its own lean
    process, so measure from one: spawn a clean interpreter that runs
    ``measure_serve()`` and prints the row as JSON.
    """
    import os
    import subprocess
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2])
    env.pop("WRL_SERVER", None)
    proc = subprocess.run(
        [sys.executable, "-c",
         "import json; from repro.perf.bench import measure_serve; "
         "print(json.dumps(measure_serve()))"],
        env=env, check=True, stdout=subprocess.PIPE,
        stdin=subprocess.DEVNULL, timeout=600)
    return json.loads(proc.stdout)


def run_bench(workloads=DEFAULT_WORKLOADS, tools=DEFAULT_TOOLS,
              opts=DEFAULT_OPTS, reps: int = 3,
              tool_reps: int = 1, jobs: int = 0,
              serve: bool = True) -> dict:
    """Run the sections and assemble the report."""
    tool_rows = measure_tools(workloads, tools, opts, reps=tool_reps,
                              jobs=jobs)
    return {
        **({"serve": measure_serve_isolated()} if serve else {}),
        "schema": BENCH_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "config": {
            "workloads": list(workloads),
            "tools": list(tools),
            "opts": list(opts),
            "reps": reps,
        },
        "interpreter": measure_interpreter(workloads, reps=reps),
        "tools": tool_rows,
        "overhead": overhead_table(tool_rows),
    }


def validate_report(report: dict) -> None:
    """Raise ValueError when ``report`` does not match the schema."""
    def need(cond, what):
        if not cond:
            raise ValueError(f"bad bench report: {what}")

    need(isinstance(report, dict), "not an object")
    need(report.get("schema") in ACCEPTED_SCHEMAS,
         f"schema not one of {ACCEPTED_SCHEMAS}")
    for key in ("created", "host", "config", "interpreter", "tools"):
        need(key in report, f"missing key {key!r}")
    if report["schema"] == BENCH_SCHEMA:
        # v2 adds the aggregated overhead table; v1 reports lack it.
        need(isinstance(report.get("overhead"), dict),
             "v2 report missing overhead table")
        for tool, per_opt in report["overhead"].items():
            for opt, cell in per_opt.items():
                for key in ("base_cycles", "instr_cycles", "excess_cycles",
                            "cycle_overhead", "inst_overhead"):
                    need(key in cell,
                         f"overhead[{tool!r}][{opt!r}] missing {key!r}")
    need(isinstance(report["interpreter"], dict) and report["interpreter"],
         "empty interpreter section")
    interp_keys = ["insts", "cycles", "fused_ips", "simple_ips", "speedup"]
    if report["schema"] == BENCH_SCHEMA:
        # v3 adds the region-JIT column to the interpreter section.
        interp_keys += ["jit_ips", "jit_speedup"]
    for name, row in report["interpreter"].items():
        for key in interp_keys:
            need(key in row, f"interpreter[{name!r}] missing {key!r}")
            need(isinstance(row[key], (int, float)) and row[key] > 0,
                 f"interpreter[{name!r}][{key!r}] not positive")
    need(isinstance(report["tools"], list), "tools section not a list")
    for i, row in enumerate(report["tools"]):
        for key in ("workload", "tool", "opt", "base_cycles",
                    "instr_cycles", "cycle_overhead", "base_insts",
                    "instr_insts", "base_ips", "instr_ips"):
            need(key in row, f"tools[{i}] missing {key!r}")
    if "serve" in report:
        # v4 adds the daemon throughput section (optional: --no-serve
        # smoke runs omit it; the committed baseline must carry it — a
        # tier-1 test pins that).
        serve = report["serve"]
        need(isinstance(serve, dict), "serve section not an object")
        for key in ("workload", "requests", "cold_rps", "warm_rps",
                    "speedup", "dedup_hits", "dedup_latency_ms_p50"):
            need(key in serve, f"serve section missing {key!r}")
        for key in ("cold_rps", "warm_rps", "speedup"):
            need(isinstance(serve[key], (int, float)) and serve[key] > 0,
                 f"serve[{key!r}] not positive")


def _same_host(old: dict, new: dict) -> bool:
    keys = ("implementation", "machine", "system")
    return all(old.get("host", {}).get(k) == new.get("host", {}).get(k)
               for k in keys)


def compare_reports(old: dict, new: dict,
                    threshold: float = DEFAULT_THRESHOLD,
                    ips_threshold: float = DEFAULT_IPS_THRESHOLD
                    ) -> list[str]:
    """Regression check NEW against the baseline OLD.

    Returns a list of human-readable regression descriptions (empty =
    clean).  Two families of checks:

    * **cycle overhead** (deterministic): for every (workload, tool,
      opt) cell present in both reports, the instrumented-minus-base
      excess cycles may not grow by more than ``threshold`` (relative,
      against the baseline clamped to zero, plus an absolute slack of
      ``EXCESS_CYCLE_FLOOR`` cycles so near-zero baselines don't turn
      tiny absolute growth into gate failures); brand-new cells are
      never regressions.
    * **interpreter throughput** (wall clock): fused and jit insts/sec
      may not drop by more than ``ips_threshold`` — but only when both
      reports come from the same host class, since insts/sec on
      different machines is noise, not signal.  The wider default
      tolerance reflects that even same-host wall clock moves with
      background load; this leg exists to catch throughput collapses,
      not jitter.
    """
    regressions: list[str] = []

    old_cells = {(r["workload"], r["tool"], r["opt"]): r
                 for r in old.get("tools", [])}
    for row in new.get("tools", []):
        key = (row["workload"], row["tool"], row["opt"])
        base = old_cells.get(key)
        if base is None:
            continue
        old_excess = base["instr_cycles"] - base["base_cycles"]
        new_excess = row["instr_cycles"] - row["base_cycles"]
        limit = max(old_excess, 0) * (1.0 + threshold) + EXCESS_CYCLE_FLOOR
        if new_excess > limit:
            if old_excess > 0:
                detail = (f"+{100.0 * (new_excess - old_excess) / old_excess:.1f}%, "
                          f"limit +{100.0 * threshold:.0f}%")
            else:
                # No meaningful relative growth against a zero/negative
                # baseline: report the absolute gate instead.
                detail = f"limit {limit:.0f} excess cycles"
            regressions.append(
                f"{key[0]}+{key[1]}@{key[2]}: excess cycles "
                f"{old_excess} -> {new_excess} ({detail})")

    if _same_host(old, new):
        for name, row in new.get("interpreter", {}).items():
            base = old.get("interpreter", {}).get(name)
            if base is None:
                continue
            for col, label in (("fused_ips", "fused"),
                               ("jit_ips", "jit")):
                if col not in base or col not in row:
                    continue      # jit column only exists from v3 on
                if row[col] < base[col] * (1.0 - ips_threshold):
                    regressions.append(
                        f"interpreter {name}: {label} insts/s "
                        f"{base[col]:,} -> {row[col]:,} "
                        f"(limit -{100.0 * ips_threshold:.0f}%)")
        old_serve, new_serve = old.get("serve"), new.get("serve")
        if old_serve and new_serve:
            # Same wall-clock caveat as the interpreter legs: this
            # catches the daemon hot path collapsing (lost warm pool,
            # lost batching), not host-load jitter.
            floor = old_serve["warm_rps"] * (1.0 - ips_threshold)
            if new_serve["warm_rps"] < floor:
                regressions.append(
                    f"serve: warm req/s {old_serve['warm_rps']} -> "
                    f"{new_serve['warm_rps']} "
                    f"(limit -{100.0 * ips_threshold:.0f}%)")
    return regressions


def load_report(path: Path | None = None) -> dict | None:
    """Load and validate a committed report; None when absent."""
    path = path or default_report_path()
    if not path.exists():
        return None
    report = json.loads(path.read_text())
    validate_report(report)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark the WRL-64 interpreter and tool matrix.")
    parser.add_argument("--workloads", default=",".join(DEFAULT_WORKLOADS),
                        help="comma-separated workload names")
    parser.add_argument("--tools", default=",".join(DEFAULT_TOOLS),
                        help="comma-separated tool names")
    parser.add_argument("--opts", default=",".join(DEFAULT_OPTS),
                        help="comma-separated opt levels (O0..O4)")
    parser.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two bench reports instead of "
                             "running: exit 1 when NEW regresses "
                             "against OLD")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="relative regression tolerance for "
                             "--compare (default 0.10)")
    parser.add_argument("--ips-threshold", type=float,
                        default=DEFAULT_IPS_THRESHOLD,
                        help="tolerance for the same-host interpreter "
                             "insts/sec legs of --compare (wall clock "
                             "jitters with host load; default 0.35)")
    parser.add_argument("--reps", type=int, default=3,
                        help="timed repetitions per interpreter cell")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for the tools matrix "
                             "(0 = in-process, least timing noise)")
    parser.add_argument("--all", action="store_true",
                        help="full matrix: every workload and tool")
    parser.add_argument("--quick", action="store_true",
                        help="smoke run: one workload, one tool, one "
                             "opt, no serve section")
    parser.add_argument("--serve", default=None,
                        action=argparse.BooleanOptionalAction,
                        help="measure the wrl-serve daemon section "
                             "(default: on, off with --quick)")
    parser.add_argument("--out", default=str(default_report_path()),
                        help="report path (default: repo root)")
    parser.add_argument("--trace", default=trace_path_from_env(),
                        metavar="PATH",
                        help="capture a structured trace of the bench "
                             "run (.json = Chrome trace, .jsonl = line-"
                             "delimited; default: $WRL_TRACE). Note: "
                             "tracing perturbs wall-clock numbers")
    args = parser.parse_args(argv)

    if args.compare:
        if not 0 <= args.threshold < 1:
            parser.error("--threshold must be in [0, 1)")
        if not 0 <= args.ips_threshold < 1:
            parser.error("--ips-threshold must be in [0, 1)")
        old_path, new_path = (Path(p) for p in args.compare)
        for p in (old_path, new_path):
            if not p.exists():
                parser.error(f"--compare: {p} does not exist")
        old = json.loads(old_path.read_text())
        new = json.loads(new_path.read_text())
        validate_report(old)
        validate_report(new)
        regressions = compare_reports(old, new, threshold=args.threshold,
                                      ips_threshold=args.ips_threshold)
        if regressions:
            print(f"{len(regressions)} regression(s) vs {old_path}:")
            for line in regressions:
                print(f"  REGRESSION {line}")
            return 1
        print(f"no regressions vs {old_path} "
              f"(threshold {args.threshold:.0%})")
        return 0

    workloads = tuple(args.workloads.split(","))
    tools = tuple(args.tools.split(","))
    opts = tuple(args.opts.split(","))
    if args.all:
        workloads, tools = WORKLOAD_NAMES, TOOL_NAMES
    if args.quick:
        workloads, tools, opts = workloads[:1], tools[:1], opts[:1]
    serve = args.serve if args.serve is not None else not args.quick

    if args.reps < 1:
        parser.error("--reps must be at least 1")
    for name, known, flag in (
            (workloads, WORKLOAD_NAMES, "--workloads"),
            (tools, TOOL_NAMES, "--tools"),
            (opts, tuple(level.name for level in OptLevel), "--opts")):
        unknown = [n for n in name if n not in known]
        if unknown:
            parser.error(f"{flag}: unknown {', '.join(unknown)} "
                         f"(choose from {', '.join(known)})")

    out = Path(args.out)
    if not out.parent.is_dir():
        parser.error(f"--out: directory {out.parent} does not exist")

    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    if args.trace:
        TRACE.reset()
        TRACE.enable()
    try:
        with TRACE.span("wrl-bench", "bench"):
            report = run_bench(workloads, tools, opts, reps=args.reps,
                               jobs=args.jobs, serve=serve)
    finally:
        if args.trace:
            TRACE.write(args.trace)
            TRACE.disable()
            print(f"wrote trace to {args.trace}")
    validate_report(report)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.out}")
    for name, row in report["interpreter"].items():
        print(f"  {name}: jit {row['jit_ips']:,} insts/s "
              f"({row['jit_speedup']}x fused), "
              f"fused {row['fused_ips']:,} insts/s, "
              f"simple {row['simple_ips']:,} insts/s "
              f"({row['speedup']}x)")
    for row in report["tools"]:
        print(f"  {row['workload']}+{row['tool']}@{row['opt']}: "
              f"{row['cycle_overhead']}x cycles, "
              f"{row['instr_ips']:,} insts/s instrumented")
    print("  overhead (all measured workloads summed):")
    for tool, per_opt in sorted(report["overhead"].items()):
        cells = "  ".join(f"{opt}={cell['cycle_overhead']}x"
                          for opt, cell in sorted(per_opt.items()))
        print(f"    {tool}: {cells}")
    if "serve" in report:
        row = report["serve"]
        print(f"  serve ({row['workload']}): warm {row['warm_rps']} "
              f"req/s vs cold {row['cold_rps']} req/s "
              f"({row['speedup']}x), dedup burst {row['dedup_hits']}/"
              f"{row['dedup_burst'] - 1} hits at "
              f"{row['dedup_latency_ms_p50']}ms p50")
    return 0


if __name__ == "__main__":
    sys.exit(main())
