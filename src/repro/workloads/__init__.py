"""Twenty synthetic workload programs standing in for the SPEC92 suite.

The paper instruments 20 SPEC92 programs; we cannot redistribute those, so
this package provides 20 deterministic MLC programs with the same *kinds*
of hot spots: memory-bound kernels, branch-heavy search, call-heavy
recursion, string processing, heap churn, and file I/O.  Each prints a
checksum (so pristine-behaviour comparisons are meaningful) and accepts an
optional scale argument.
"""

from __future__ import annotations

import importlib.resources as resources

from ..machine import RunResult, run_module
from ..mlc import build_executable
from ..objfile.module import Module

WORKLOAD_NAMES = (
    "compress", "eqntott", "espresso", "li", "sc",
    "cc1", "quick", "merge", "matrix", "sieve",
    "hashtab", "bfs", "nqueens", "crc", "strings",
    "life", "churn", "fileio", "fib", "bitops",
)

_exe_cache: dict[str, bytes] = {}


def load_source(name: str) -> str:
    """Read one workload's MLC source."""
    if name not in WORKLOAD_NAMES:
        raise KeyError(f"unknown workload {name!r}")
    return resources.files(__package__) \
        .joinpath(f"programs/{name}.mlc").read_text()


def build_workload(name: str) -> Module:
    """Compile and link one workload (cached).

    Two layers: an in-memory blob memo for this process, backed by the
    content-addressed on-disk artifact store so fresh processes (e.g.
    parallel eval workers) skip recompilation too.
    """
    blob = _exe_cache.get(name)
    if blob is None:
        # Imported lazily: repro.eval pulls this module in at package
        # import time, so a top-level import would be circular.
        from ..eval.cache import executable_key, get_default_cache
        source = load_source(name)
        disk = get_default_cache()
        key = executable_key((source,), name)
        if disk is not None:
            blob = disk.get(key)
            if blob is not None:
                try:
                    Module.from_bytes(blob)
                except Exception:
                    blob = None           # unreadable blob: recompile
        if blob is None:
            exe = build_executable([source], name=name)
            blob = exe.to_bytes()
            if disk is not None:
                disk.put(key, blob)
        _exe_cache[name] = blob
    return Module.from_bytes(blob)


def run_workload(name: str, *, args=(), **kw) -> RunResult:
    return run_module(build_workload(name), args=tuple(args), **kw)


def all_workloads() -> list[str]:
    return list(WORKLOAD_NAMES)
