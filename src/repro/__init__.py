"""Reproduction of "ATOM: A System for Building Customized Program
Analysis Tools" (Srivastava & Eustace, PLDI 1994).

Subpackages, bottom of the stack to the top:

* :mod:`repro.isa` — the WRL-64 ISA (Alpha-like): encodings, assembler,
  disassembler;
* :mod:`repro.objfile` — the WOF object format and linker;
* :mod:`repro.machine` — the simulated machine and its small OS;
* :mod:`repro.mlc` — the mini-C compiler and runtime library;
* :mod:`repro.om` — OM, the link-time code modification system;
* :mod:`repro.atom` — ATOM itself, the paper's contribution;
* :mod:`repro.tools` — the eleven tools of the paper's evaluation;
* :mod:`repro.baselines` — Pixie-style counter and address tracer;
* :mod:`repro.workloads` — twenty SPEC92-stand-in programs;
* :mod:`repro.eval` — the benchmark harness glue.
"""

__version__ = "1.0.0"
