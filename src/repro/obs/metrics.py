"""``repro.obs.metrics``: a labeled metrics registry with exposition.

The serving stack needs *continuous* operational signals — request
rates, latency percentiles, queue depth, cache usage — not just the
point-in-time ``stats`` snapshot or a post-hoc trace file.  This module
is the registry behind the daemon's ``metrics`` op and the ``wrl-top``
dashboard: Prometheus-style instruments kept cheap enough to sit on the
request path.

Three instrument kinds, each optionally labeled:

* :class:`Counter` — monotone totals (requests, dedup hits, errors).
* :class:`Gauge` — point-in-time values (queue depth, cache bytes).
* :class:`Histogram` — distributions over fixed cumulative buckets
  (latency, batch occupancy) with nearest-rank percentiles.

Every counter and histogram additionally feeds a **rolling-window
ring** of per-second buckets, so rates and windowed percentiles over
the last 1s / 10s / 60s come straight out of the registry — that is
what drives the dashboard's sparklines and the daemon's SLO watchdog,
without a Prometheus server in the loop.

Exposition is dual-format: :meth:`MetricsRegistry.render_text` emits
the Prometheus text format (``# HELP`` / ``# TYPE`` / samples —
parseable by any Prometheus scraper, and by :func:`parse_text` in
tests), and :meth:`MetricsRegistry.render_doc` emits a JSON document
carrying the same samples plus the windowed rates.

The zero-cost-when-disabled discipline matches :mod:`repro.obs`: a
registry built with ``enabled=False`` hands out shared null instruments
whose ``inc``/``set``/``observe``/``labels`` are empty methods, so a
metrics-off daemon pays one no-op call per hook site.  The
``make check-metrics`` lane enforces the enabled path's cost on daemon
throughput the same way ``repro.obs.overhead`` gates the tracer.
"""

from __future__ import annotations

import math
import re
import time

METRICS_SCHEMA = "wrl-metrics/v1"

#: Rolling windows (seconds) reported by :meth:`MetricsRegistry.render_doc`.
WINDOWS = (1, 10, 60)

#: Per-second ring slots; must exceed the largest window so a full 60s
#: of history is always resident.
_RING_SLOTS = 64

#: Default cumulative bucket upper bounds for latency-shaped histograms
#: (milliseconds), ending in +Inf.
DEFAULT_BUCKETS = (1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                   500.0, 1000.0, 2500.0, 5000.0, 10000.0)

#: Raw observations kept per histogram child for windowed percentiles.
_HIST_KEEP = 8192

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricsError(ValueError):
    """Registry misuse: bad names, kind or label mismatches."""


# ---- rolling per-second ring ------------------------------------------------

class _Ring:
    """Per-second accumulation buckets for rolling-window rates.

    A slot is lazily reset when its second index comes around again, so
    ``add`` is O(1) and idle seconds cost nothing.
    """

    __slots__ = ("_clock", "_slots", "_stamps")

    def __init__(self, clock):
        self._clock = clock
        self._slots = [0.0] * _RING_SLOTS
        self._stamps = [-1] * _RING_SLOTS

    def add(self, value: float) -> None:
        sec = int(self._clock())
        i = sec % _RING_SLOTS
        if self._stamps[i] != sec:
            self._stamps[i] = sec
            self._slots[i] = 0.0
        self._slots[i] += value

    def total(self, window: int) -> float:
        """Sum over the last ``window`` *complete-ish* seconds
        (including the current partial second, so fresh activity shows
        up immediately)."""
        now = int(self._clock())
        total = 0.0
        for back in range(window):
            sec = now - back
            i = sec % _RING_SLOTS
            if self._stamps[i] == sec:
                total += self._slots[i]
        return total

    def rate(self, window: int) -> float:
        """Events (or value mass) per second over ``window`` seconds."""
        return self.total(window) / window


# ---- null instruments (disabled registry) -----------------------------------

class _NullChild:
    __slots__ = ()

    def inc(self, n: float = 1.0) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_CHILD = _NullChild()


class _NullMetric:
    """Stands in for every instrument kind when the registry is off."""

    __slots__ = ()

    def labels(self, *values):
        return _NULL_CHILD

    def inc(self, n: float = 1.0) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def rate(self, window: int) -> float:
        return 0.0

    def window_values(self, window: int) -> list:
        return []


_NULL_METRIC = _NullMetric()


# ---- live instruments -------------------------------------------------------

class _Metric:
    """Common labeled-instrument machinery; children are cached per
    label-value tuple so hot paths bind once and call methods only."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames=(), *, clock):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._clock = clock
        self._children: dict[tuple, object] = {}

    def labels(self, *values):
        values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise MetricsError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"value(s) {self.labelnames}, got {len(values)}")
        child = self._children.get(values)
        if child is None:
            child = self._children[values] = self._make_child()
        return child

    def _make_child(self):                       # pragma: no cover
        raise NotImplementedError

    # Unlabeled shortcut: metric acts as its own sole child.
    def _solo(self):
        return self.labels()


class _CounterChild:
    __slots__ = ("_value", "_ring")

    def __init__(self, clock):
        self._value = 0.0
        self._ring = _Ring(clock)

    def inc(self, n: float = 1.0) -> None:
        self._value += n
        self._ring.add(n)


class Counter(_Metric):
    kind = "counter"

    def _make_child(self):
        return _CounterChild(self._clock)

    def inc(self, n: float = 1.0) -> None:
        self._solo().inc(n)

    def rate(self, window: int) -> float:
        """Aggregate events/sec across every label child."""
        return sum(c._ring.rate(window) for c in self._children.values())

    def total(self) -> float:
        return sum(c._value for c in self._children.values())


class _GaugeChild:
    __slots__ = ("_value",)

    def __init__(self):
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, n: float = 1.0) -> None:
        self._value += n

    def dec(self, n: float = 1.0) -> None:
        self._value -= n


class Gauge(_Metric):
    kind = "gauge"

    def _make_child(self):
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._solo().set(value)

    def inc(self, n: float = 1.0) -> None:
        self._solo().inc(n)

    def dec(self, n: float = 1.0) -> None:
        self._solo().dec(n)


class _HistogramChild:
    __slots__ = ("_bounds", "_buckets", "_sum", "_count", "_ring",
                 "_recent", "_clock")

    def __init__(self, bounds, clock):
        self._bounds = bounds
        self._buckets = [0] * (len(bounds) + 1)    # +Inf last
        self._sum = 0.0
        self._count = 0
        self._ring = _Ring(clock)
        self._recent: list[tuple[int, float]] = []
        self._clock = clock

    def observe(self, value: float) -> None:
        value = float(value)
        self._sum += value
        self._count += 1
        self._ring.add(1.0)
        i = 0
        bounds = self._bounds
        while i < len(bounds) and value > bounds[i]:
            i += 1
        self._buckets[i] += 1
        recent = self._recent
        recent.append((int(self._clock()), value))
        if len(recent) > _HIST_KEEP:
            del recent[:len(recent) - _HIST_KEEP]

    def window_values(self, window: int) -> list[float]:
        floor = int(self._clock()) - window
        return [v for sec, v in self._recent if sec > floor]


class Histogram(_Metric):
    kind = "histogram"

    def __init__(self, name, help, labelnames=(), *, clock,
                 buckets=DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames, clock=clock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricsError(f"{name}: histogram needs >= 1 bucket")
        self.buckets = bounds

    def _make_child(self):
        return _HistogramChild(self.buckets, self._clock)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def rate(self, window: int) -> float:
        return sum(c._ring.rate(window) for c in self._children.values())

    def window_values(self, window: int) -> list[float]:
        """Raw observations from the last ``window`` seconds across all
        label children (the SLO watchdog's percentile feed)."""
        out: list[float] = []
        for child in self._children.values():
            out.extend(child.window_values(window))
        return out


# ---- the registry -----------------------------------------------------------

class MetricsRegistry:
    """Instrument factory + exposition surface for one process.

    ``enabled=False`` hands out shared null instruments: every hook
    site still works, at the cost of one empty method call.  ``clock``
    is injectable for deterministic tests (defaults to
    ``time.monotonic``).
    """

    def __init__(self, *, enabled: bool = True, clock=None):
        self.enabled = enabled
        self._clock = clock or time.monotonic
        self._metrics: dict[str, _Metric] = {}

    # ---- instrument factories ----------------------------------------------

    def _get(self, cls, name, help, labelnames, **kw):
        if not self.enabled:
            return _NULL_METRIC
        if not _NAME_RE.match(name):
            raise MetricsError(f"bad metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricsError(f"{name}: bad label name {label!r}")
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls) \
                    or metric.labelnames != tuple(labelnames):
                raise MetricsError(
                    f"{name} re-registered as {cls.kind} "
                    f"{tuple(labelnames)} (was {metric.kind} "
                    f"{metric.labelnames})")
            return metric
        metric = cls(name, help, labelnames, clock=self._clock, **kw)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str, labelnames=()) -> Counter:
        return self._get(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames=()) -> Gauge:
        return self._get(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str, labelnames=(),
                  buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, labelnames,
                         buckets=buckets)

    # ---- exposition ---------------------------------------------------------

    def render_text(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        if not self.enabled:
            return "# wrl metrics disabled\n"
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for values in sorted(metric._children):
                child = metric._children[values]
                if metric.kind == "histogram":
                    lines.extend(_render_hist(metric, values, child))
                else:
                    lines.append(
                        f"{name}{_labels_text(metric.labelnames, values)}"
                        f" {_fmt(child._value)}")
        return "\n".join(lines) + "\n"

    def render_doc(self) -> dict:
        """JSON exposition: samples plus rolling-window rates."""
        doc = {"schema": METRICS_SCHEMA, "enabled": self.enabled,
               "windows_s": list(WINDOWS), "metrics": {}}
        if not self.enabled:
            return doc
        from . import hist_summary
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry = {"kind": metric.kind, "help": metric.help,
                     "labels": list(metric.labelnames), "samples": []}
            for values in sorted(metric._children):
                child = metric._children[values]
                sample = {"labels": dict(zip(metric.labelnames, values))}
                if metric.kind == "histogram":
                    sample["count"] = child._count
                    sample["sum"] = round(child._sum, 6)
                    sample["summary"] = hist_summary(
                        child.window_values(WINDOWS[-1]))
                else:
                    sample["value"] = child._value
                entry["samples"].append(sample)
            if metric.kind in ("counter", "histogram"):
                entry["rates"] = {f"{w}s": round(metric.rate(w), 4)
                                  for w in WINDOWS}
            doc["metrics"][name] = entry
        return doc


# ---- text-format helpers ----------------------------------------------------

def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n") \
                .replace('"', r"\"")


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _labels_text(names, values, extra=()) -> str:
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    pairs.extend(f'{n}="{_escape_label(v)}"' for n, v in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _render_hist(metric, values, child) -> list[str]:
    lines = []
    cumulative = 0
    bounds = [*metric.buckets, math.inf]
    for bound, count in zip(bounds, child._buckets):
        cumulative += count
        le = _labels_text(metric.labelnames, values,
                          extra=(("le", _fmt(bound)),))
        lines.append(f"{metric.name}_bucket{le} {cumulative}")
    base = _labels_text(metric.labelnames, values)
    lines.append(f"{metric.name}_sum{base} {_fmt(child._sum)}")
    lines.append(f"{metric.name}_count{base} {_fmt(child._count)}")
    return lines


# ---- text-format parser (tests, wrl-top fallback) ---------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$")
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_text(text: str) -> dict:
    """Parse Prometheus text exposition into
    ``{name: {"type": kind, "help": str, "samples": [(labels, value)]}}``.

    Covers the subset :meth:`MetricsRegistry.render_text` emits (which
    is the subset real scrapers require); raises ``ValueError`` on a
    malformed sample line so tests genuinely verify parseability.
    """
    out: dict[str, dict] = {}

    def family(name: str) -> dict:
        # _bucket/_sum/_count samples belong to their histogram family.
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in out:
                return out[name[:-len(suffix)]]
        return out.setdefault(name, {"type": "untyped", "help": "",
                                     "samples": []})

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            family(name)["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            family(name)["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"unparsable metrics sample: {line!r}")
        raw = match.group("value")
        value = math.inf if raw == "+Inf" else float(raw)
        labels = {}
        if match.group("labels"):
            labels = {k: v.replace(r"\"", '"').replace(r"\n", "\n")
                       .replace(r"\\", "\\")
                      for k, v in
                      _LABEL_PAIR_RE.findall(match.group("labels"))}
        family(match.group("name"))["samples"].append(
            (match.group("name"), labels, value))
    return out


__all__ = [
    "METRICS_SCHEMA", "WINDOWS", "DEFAULT_BUCKETS", "MetricsError",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "parse_text",
]
