"""``repro.obs.runtime``: guest-runtime profiling & introspection.

Where :mod:`repro.obs` watches the *pipeline* (host-side spans and
counters), this module watches the *guest*: what an executable is doing
while it runs on the WRL-64 interpreter.  Three cooperating pieces:

* **Deterministic PC sampling.**  A sampler handed to ``Cpu.run`` fires
  every ``interval`` *retired instructions* — not wall-clock — so the
  sampled PC stream is a pure function of (text, entry, interval): two
  runs produce byte-identical profiles, with superblock fusion on or
  off.  Each sample charges the cycles accumulated since the previous
  sample to the sampled instruction; at ``interval=1`` this is an exact
  per-PC cycle account.

* **Pristine attribution.**  For ATOM-instrumented executables, sampled
  PCs are pushed through the static new->old PC map, so hot spots are
  reported against the *original* program (paper §3.3), while the
  cycles ATOM added are bucketed by what they are: register
  save/restore brackets and call glue (``bracket``), O4-inlined
  analysis bodies (``splice``), and the analysis routines themselves
  (``analysis``).  The classification is static — ``om.codegen`` labels
  every inserted instruction (``Module.pc_attr``) and the instrumenter
  records the analysis unit's text range — so attribution never
  guesses.

* **Shadow call stacks.**  With ``track_calls``, the interpreter feeds
  call/return transitions to the sampler, which maintains a shadow
  stack and aggregates collapsed (flamegraph) stacks keyed by
  procedure chains.

Heartbeats reuse the sampling hook at a very large interval to emit
JSONL progress records (``wrl-eval`` workers); the records are shaped
exactly like tracer span events so a heartbeat file is a valid
``wrl-trace`` fragment and merges losslessly into snapshots.
"""

from __future__ import annotations

import json
import os
import time
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path

from ..objfile.module import (Module, PC_ATTR_GLUE, PC_ATTR_NAMES,
                              PC_ATTR_SAVE, PC_ATTR_SPLICE)
from ..objfile.sections import TEXT
from ..objfile.symtab import SymKind
from . import TRACE

#: Prefixes stamped by the instrumenter; re-declared via import so the
#: taxonomy cannot drift from the emitters.
from ..om.codegen import INLINE_PREFIX
from ..atom.lowering import ANAL_PREFIX

PROFILE_SCHEMA = "wrl-profile/v1"

#: Default sampling period, in retired instructions.
DEFAULT_INTERVAL = 1000

#: Attribution buckets, in report order.  ``orig`` is the pristine
#: program; ``bracket``/``splice``/``analysis`` partition ATOM's added
#: cycles; ``unknown`` should stay empty (it is asserted <1% in tests).
BUCKET_ORIG = "orig"
BUCKET_BRACKET = "bracket"
BUCKET_SPLICE = "splice"
BUCKET_ANALYSIS = "analysis"
BUCKET_UNKNOWN = "unknown"
BUCKETS = (BUCKET_ORIG, BUCKET_BRACKET, BUCKET_SPLICE, BUCKET_ANALYSIS,
           BUCKET_UNKNOWN)
OVERHEAD_BUCKETS = (BUCKET_BRACKET, BUCKET_SPLICE, BUCKET_ANALYSIS)

ENV_HEARTBEAT = "WRL_HEARTBEAT"
ENV_HEARTBEAT_INSTS = "WRL_HEARTBEAT_INSTS"
DEFAULT_HEARTBEAT_INSTS = 10_000_000


# ---- samplers ---------------------------------------------------------------

class PcSampler:
    """Deterministic PC sampler: one observation every ``interval``
    retired instructions, charging the cycles since the previous sample
    to the instruction that crossed the boundary."""

    track_calls = False

    def __init__(self, interval: int = DEFAULT_INTERVAL):
        if interval < 1:
            raise ValueError(f"sample interval must be >= 1: {interval}")
        self.interval = int(interval)
        #: instruction index -> sample count / charged cycles
        self.counts: dict[int, int] = {}
        self.cycle_counts: dict[int, int] = {}
        self.cpu = None
        self._stats = None
        self._last_cycles = 0

    def bind(self, cpu):
        """Attach to a Cpu at run start (called by ``Cpu.run``)."""
        self.cpu = cpu
        self._stats = cpu.stats
        self._last_cycles = cpu.stats[0]
        return self

    def sample(self, index: int) -> None:
        cycles = self._stats[0]
        counts = self.counts
        counts[index] = counts.get(index, 0) + 1
        cyc = self.cycle_counts
        cyc[index] = cyc.get(index, 0) + (cycles - self._last_cycles)
        self._last_cycles = cycles

    @property
    def total_samples(self) -> int:
        return sum(self.counts.values())


class StackSampler(PcSampler):
    """PC sampler plus a shadow call stack.

    The interpreter reports every executed call (bsr/jsr) and return;
    calls push ``(return_index, callee_index)``, returns pop back to the
    deepest frame whose saved return site matches the actual return
    target (tolerating longjmp-style non-local exits by leaving the
    stack alone when nothing matches).  Each sample records the chain of
    callee indices plus the sampled leaf.
    """

    track_calls = True

    def __init__(self, interval: int = DEFAULT_INTERVAL):
        super().__init__(interval)
        self._stack: list[tuple[int, int]] = []
        #: (callee indices..., leaf index) -> sample count
        self.stacks: dict[tuple[int, ...], int] = {}

    def bind(self, cpu):
        self._stack = []
        return super().bind(cpu)

    def enter(self, call_index: int, callee_index: int) -> None:
        self._stack.append((call_index + 1, callee_index))

    def leave(self, dest_index: int) -> None:
        stack = self._stack
        for k in range(len(stack) - 1, -1, -1):
            if stack[k][0] == dest_index:
                del stack[k:]
                return

    def sample(self, index: int) -> None:
        super().sample(index)
        key = tuple(entry[1] for entry in self._stack) + (index,)
        stacks = self.stacks
        stacks[key] = stacks.get(key, 0) + 1


# ---- pristine attribution ---------------------------------------------------

@dataclass(frozen=True)
class Attribution:
    """Where one sampled PC lands, in pristine terms."""

    bucket: str
    label: str            # procedure / routine / marker name
    orig_pc: int | None   # original address (``orig`` bucket only)
    kind: str = ""        # fine-grained: save / glue / splice


class Attributor:
    """Static PC -> {pristine proc | overhead bucket} resolver.

    Works on any linked module: for plain executables every text PC is
    ``orig``; for ATOM output the new->old map, the inserted-instruction
    classification (``pc_attr``), and the analysis-unit text range
    recorded at instrumentation time partition the address space
    completely.
    """

    def __init__(self, module: Module):
        self.module = module
        text = module.section(TEXT)
        self.text_base = text.vaddr or 0
        self.text_end = self.text_base + len(text.data)
        self.pc_map = module.pc_map
        self.pc_attr = module.pc_attr
        self.is_atom = "atom:anal_text_base" in module.meta
        self.anal_base = module.meta.get("atom:anal_text_base", 0)
        size = module.meta.get("atom:anal_text_size")
        if size is not None:
            self.anal_end = self.anal_base + size
        else:
            # Older artifact without the size: the data base bounds the
            # analysis text from above (there is only alignment pad
            # between them).
            self.anal_end = module.meta.get("atom:anal_data_base",
                                            self.anal_base)

        funcs = []
        splices = []
        anal = []
        for sym in module.symtab:
            if not sym.defined:
                continue
            if sym.is_abs:
                if sym.name.startswith(ANAL_PREFIX) and \
                        self.anal_base <= sym.value < self.anal_end:
                    anal.append((sym.value, sym.name[len(ANAL_PREFIX):]))
                continue
            if sym.kind is SymKind.FUNC:
                funcs.append((sym.value, sym.value + (sym.size or 0),
                              sym.name))
            elif sym.name.startswith(INLINE_PREFIX):
                name = sym.name[len(INLINE_PREFIX):].rsplit(".", 1)[0]
                splices.append((sym.value, name))
        self._funcs = sorted(funcs)
        self._func_starts = [f[0] for f in self._funcs]
        self._splices = sorted(splices)
        self._splice_starts = [s[0] for s in self._splices]
        self._anal = sorted(anal)
        self._anal_starts = [a[0] for a in self._anal]

    # -- lookups ------------------------------------------------------------

    def proc_at(self, pc: int) -> str | None:
        """Name of the procedure whose [start, end) contains ``pc``."""
        i = bisect_right(self._func_starts, pc) - 1
        if i >= 0:
            start, end, name = self._funcs[i]
            if pc < end or start == end:
                return name
        return None

    def _splice_at(self, pc: int) -> str | None:
        i = bisect_right(self._splice_starts, pc) - 1
        return self._splices[i][1] if i >= 0 else None

    def _anal_proc_at(self, pc: int) -> str | None:
        i = bisect_right(self._anal_starts, pc) - 1
        return self._anal[i][1] if i >= 0 else None

    def resolve(self, pc: int) -> Attribution:
        if self.is_atom and self.anal_base <= pc < self.anal_end:
            return Attribution(BUCKET_ANALYSIS,
                               self._anal_proc_at(pc) or "<analysis>", None)
        orig = self.pc_map.get(pc)
        if orig is not None:
            return Attribution(BUCKET_ORIG, self.proc_at(pc) or f"{pc:#x}",
                               orig)
        code = self.pc_attr.get(pc)
        if code == PC_ATTR_SPLICE:
            return Attribution(BUCKET_SPLICE,
                               self._splice_at(pc) or "<splice>", None,
                               kind="splice")
        if code in (PC_ATTR_SAVE, PC_ATTR_GLUE):
            return Attribution(BUCKET_BRACKET,
                               self.proc_at(pc) or f"{pc:#x}", None,
                               kind=PC_ATTR_NAMES[code])
        if not self.is_atom and self.text_base <= pc < self.text_end:
            # Plain executable: everything in text is the original
            # program, standing in for its own pristine address.
            return Attribution(BUCKET_ORIG, self.proc_at(pc) or f"{pc:#x}",
                               pc)
        return Attribution(BUCKET_UNKNOWN, self.proc_at(pc) or f"{pc:#x}",
                           None)

    def frame_name(self, pc: int) -> str:
        """Display name for a call-stack frame entered at ``pc``."""
        if self.is_atom and self.anal_base <= pc < self.anal_end:
            return self._anal_proc_at(pc) or "<analysis>"
        return self.proc_at(pc) or f"{pc:#x}"

    def leaf_frames(self, pc: int) -> list[str]:
        """Flamegraph frames a sample at ``pc`` contributes below its
        call stack: the containing procedure, plus a synthetic child
        frame for instrumentation overhead so it is visible as its own
        flame."""
        a = self.resolve(pc)
        if a.bucket == BUCKET_BRACKET:
            return [a.label, "[bracket]"]
        if a.bucket == BUCKET_SPLICE:
            site = self.proc_at(pc) or f"{pc:#x}"
            return [site, f"[splice:{a.label}]"]
        return [a.label]


# ---- profile artifact -------------------------------------------------------

def profile_doc(sampler: PcSampler, module: Module) -> dict:
    """Resolve a finished sampler into a deterministic profile document.

    Every field is a pure function of (module, entry, interval) — no
    timestamps, no wall-clock rates — so two runs of the same executable
    serialize byte-identically.
    """
    cpu = sampler.cpu
    if cpu is None:
        raise ValueError("sampler was never bound to a run")
    text_base = cpu.text_base
    attr = Attributor(module)

    pcs: dict[str, dict] = {}
    buckets = {b: {"samples": 0, "cycles": 0} for b in BUCKETS}
    procs: dict[tuple[str, str], dict] = {}
    total_samples = 0
    total_cycles = 0
    for index in sorted(sampler.counts):
        pc = text_base + 4 * index
        n = sampler.counts[index]
        cyc = sampler.cycle_counts.get(index, 0)
        a = attr.resolve(pc)
        total_samples += n
        total_cycles += cyc
        row = {"n": n, "cycles": cyc, "bucket": a.bucket, "sym": a.label}
        if a.kind:
            row["kind"] = a.kind
        if a.orig_pc is not None:
            row["orig_pc"] = f"{a.orig_pc:#x}"
        pcs[f"{pc:#x}"] = row
        buckets[a.bucket]["samples"] += n
        buckets[a.bucket]["cycles"] += cyc
        prow = procs.setdefault((a.label, a.bucket),
                                {"name": a.label, "bucket": a.bucket,
                                 "samples": 0, "cycles": 0})
        prow["samples"] += n
        prow["cycles"] += cyc

    for row in buckets.values():
        row["cycle_share"] = round(row["cycles"] / total_cycles, 6) \
            if total_cycles else 0.0

    doc = {
        "schema": PROFILE_SCHEMA,
        "module": module.name,
        "atom": attr.is_atom,
        "opt_level": module.meta.get("atom:opt_level"),
        "interval": sampler.interval,
        "samples": total_samples,
        "insts": cpu.stats[1],
        "cycles": cpu.stats[0],
        "sampled_cycles": total_cycles,
        "buckets": buckets,
        "procs": sorted(procs.values(),
                        key=lambda r: (-r["cycles"], -r["samples"],
                                       r["name"], r["bucket"])),
        "pcs": pcs,
    }
    if isinstance(sampler, StackSampler):
        doc["collapsed"] = collapsed_stacks(sampler, module, attr)
    return doc


def collapsed_stacks(sampler: StackSampler, module: Module,
                     attr: Attributor | None = None) -> dict[str, int]:
    """Aggregate shadow-stack samples into collapsed flamegraph lines
    (``root;caller;callee[;overhead] count``), resolved to names."""
    attr = attr or Attributor(module)
    text_base = sampler.cpu.text_base
    root = attr.frame_name(module.entry)
    out: dict[str, int] = {}
    for key, n in sampler.stacks.items():
        frames = [root]
        for callee_index in key[:-1]:
            frames.append(attr.frame_name(text_base + 4 * callee_index))
        leaf = attr.leaf_frames(text_base + 4 * key[-1])
        if leaf and frames[-1] == leaf[0]:
            frames.extend(leaf[1:])
        else:
            frames.extend(leaf)
        line = ";".join(frames)
        out[line] = out.get(line, 0) + n
    return dict(sorted(out.items()))


def stack_tables(doc: dict) -> list[dict]:
    """Per-frame inclusive/exclusive sample counts from a profile doc's
    collapsed stacks (inclusive counts each stack once per distinct
    frame, so recursion does not double-count)."""
    collapsed = doc.get("collapsed") or {}
    incl: dict[str, int] = {}
    excl: dict[str, int] = {}
    for line, n in collapsed.items():
        frames = line.split(";")
        for name in set(frames):
            incl[name] = incl.get(name, 0) + n
        leaf = frames[-1]
        excl[leaf] = excl.get(leaf, 0) + n
    rows = [{"name": name, "inclusive": incl[name],
             "exclusive": excl.get(name, 0)} for name in incl]
    rows.sort(key=lambda r: (-r["inclusive"], -r["exclusive"], r["name"]))
    return rows


def write_profile(doc: dict, path: Path | str) -> Path:
    """Serialize a profile document (deterministic byte layout)."""
    path = Path(path)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return path


def load_profile(path: Path | str) -> dict:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != PROFILE_SCHEMA:
        raise ValueError(f"{path}: not a {PROFILE_SCHEMA} artifact")
    return doc


def write_collapsed(doc: dict, path: Path | str) -> Path:
    """Write collapsed stacks in the standard flamegraph.pl format."""
    path = Path(path)
    lines = [f"{stack} {n}" for stack, n in
             sorted((doc.get("collapsed") or {}).items())]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


# ---- heartbeats -------------------------------------------------------------

def heartbeat_path() -> str | None:
    """The ``WRL_HEARTBEAT`` file, or None when heartbeats are off."""
    return os.environ.get(ENV_HEARTBEAT) or None


def heartbeat_interval() -> int:
    try:
        return max(1, int(os.environ.get(ENV_HEARTBEAT_INSTS, "")))
    except ValueError:
        return DEFAULT_HEARTBEAT_INSTS


class HeartbeatWriter:
    """Appends span-shaped JSONL progress records for one eval task.

    Each record is a zero-duration tracer event (``name="heartbeat"``),
    so the heartbeat file parses with :func:`repro.obs.read_jsonl` and
    merges losslessly into a :class:`repro.obs.Tracer` snapshot; when
    tracing is enabled the same record is mirrored into ``TRACE`` and
    ships to the parent over ``TaskResult.trace``.
    """

    def __init__(self, path: str, task: str):
        self.path = path
        self.task = task

    def emit(self, phase: str, **fields) -> None:
        args = {"task": self.task, "phase": phase, **fields}
        now = time.monotonic_ns()
        row = {"type": "span", "name": "heartbeat", "cat": "eval",
               "ts_ns": now, "dur_ns": 0, "pid": os.getpid(), "tid": 0,
               "args": args}
        try:
            with open(self.path, "a") as f:
                f.write(json.dumps(row) + "\n")
        except OSError:
            pass          # progress reporting must never fail the task
        TRACE.instant("heartbeat", "eval", **args)

    def sampler(self, phase: str,
                interval: int | None = None) -> "HeartbeatSampler":
        return HeartbeatSampler(self, phase,
                                interval or heartbeat_interval())


class HeartbeatSampler:
    """In-run progress reporter riding the deterministic sampling hook
    at a very large interval (it observes, never perturbs)."""

    track_calls = False

    def __init__(self, writer: HeartbeatWriter, phase: str,
                 interval: int = DEFAULT_HEARTBEAT_INSTS):
        if interval < 1:
            raise ValueError(f"heartbeat interval must be >= 1: {interval}")
        self.interval = int(interval)
        self._writer = writer
        self._phase = phase
        self._stats = None
        self._base_insts = 0
        self._t0 = 0

    def bind(self, cpu):
        self._stats = cpu.stats
        self._base_insts = cpu.stats[1]
        self._t0 = time.monotonic_ns()
        return self

    def sample(self, index: int) -> None:
        stats = self._stats
        insts = stats[1] - self._base_insts
        elapsed = time.monotonic_ns() - self._t0
        ips = int(insts * 1e9 / elapsed) if elapsed > 0 else 0
        self._writer.emit(self._phase, insts=insts, cycles=stats[0],
                          ips=ips)


# ---- report helpers ---------------------------------------------------------

def pristine_split(doc: dict) -> dict:
    """Pristine vs. overhead cycle split of a profile document."""
    buckets = doc.get("buckets", {})
    pristine = buckets.get(BUCKET_ORIG, {}).get("cycles", 0)
    overhead = sum(buckets.get(b, {}).get("cycles", 0)
                   for b in OVERHEAD_BUCKETS)
    unknown = buckets.get(BUCKET_UNKNOWN, {}).get("cycles", 0)
    total = doc.get("sampled_cycles", 0)
    return {"pristine": pristine, "overhead": overhead,
            "unknown": unknown, "total": total}


def top_procs(doc: dict, k: int = 10) -> list[dict]:
    return list(doc.get("procs", ()))[:max(0, k)]


def render_profile(doc: dict, top: int = 10) -> str:
    """Human-readable summary of a profile document."""
    lines = []
    mod = doc.get("module", "?")
    lines.append(f"profile of {mod}: {doc['samples']} samples "
                 f"(interval {doc['interval']}), "
                 f"{doc['insts']} insts, {doc['cycles']} cycles")
    split = pristine_split(doc)
    total = max(1, split["total"])
    lines.append(f"  pristine {split['pristine']} cycles "
                 f"({100.0 * split['pristine'] / total:.1f}%)  "
                 f"overhead {split['overhead']} cycles "
                 f"({100.0 * split['overhead'] / total:.1f}%)")
    lines.append(f"  {'bucket':<10} {'samples':>10} {'cycles':>12} "
                 f"{'share':>7}")
    for name in BUCKETS:
        row = doc["buckets"].get(name)
        if not row or not row["samples"]:
            continue
        lines.append(f"  {name:<10} {row['samples']:>10} "
                     f"{row['cycles']:>12} "
                     f"{100.0 * row.get('cycle_share', 0):>6.1f}%")
    lines.append(f"  top {top} locations (self):")
    lines.append(f"  {'name':<28} {'bucket':<9} {'samples':>10} "
                 f"{'cycles':>12}")
    for row in top_procs(doc, top):
        lines.append(f"  {row['name']:<28} {row['bucket']:<9} "
                     f"{row['samples']:>10} {row['cycles']:>12}")
    tables = stack_tables(doc)
    if tables:
        lines.append(f"  top {top} frames (inclusive/exclusive samples):")
        for row in tables[:top]:
            lines.append(f"  {row['name']:<40} {row['inclusive']:>10} "
                         f"{row['exclusive']:>10}")
    return "\n".join(lines)


# ---- smoke / walkthrough driver --------------------------------------------

def profile_tool_run(workload: str = "fib", tool_name: str = "prof",
                     opt: int = 4, interval: int = 997,
                     stacks: bool = True, out_dir: Path | str | None = None,
                     cache=None):
    """Instrument ``workload`` with ``tool`` and profile the run.

    Returns ``(doc, run_result)``; with ``out_dir`` also writes
    ``module.wof`` (the instrumented executable), ``profile.json``,
    ``profile.collapsed``, and ``annotated.txt``.  This is the
    ``make check-profile`` smoke path and the examples' entry point.
    """
    from ..atom.saves import OptLevel
    from ..tools import get_tool
    from ..workloads import build_workload
    from .annotate import render_annotated
    from ..eval import runner

    app = build_workload(workload)
    tool = get_tool(tool_name)
    kwargs = {} if cache is None else {"cache": cache}
    inst = runner.apply_tool(app, tool, opt=OptLevel(opt), **kwargs)
    sampler = (StackSampler if stacks else PcSampler)(interval)
    run = runner.run_instrumented(inst, sampler=sampler)
    doc = profile_doc(sampler, inst.module)
    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        inst.module.save(out_dir / "module.wof")
        write_profile(doc, out_dir / "profile.json")
        if "collapsed" in doc:
            write_collapsed(doc, out_dir / "profile.collapsed")
        (out_dir / "annotated.txt").write_text(
            render_annotated(inst.module, doc, top=5) + "\n")
    return doc, run


def main(argv=None) -> int:
    import argparse
    ap = argparse.ArgumentParser(
        prog="repro.obs.runtime",
        description="profile an instrumented tool run (smoke driver)")
    ap.add_argument("--workload", default="fib")
    ap.add_argument("--tool", default="prof")
    ap.add_argument("--opt", type=int, default=4, choices=[0, 1, 2, 3, 4])
    ap.add_argument("--interval", type=int, default=997)
    ap.add_argument("--no-stacks", action="store_true")
    ap.add_argument("--out-dir", default=None)
    ap.add_argument("--top", type=int, default=10)
    opts = ap.parse_args(argv)
    doc, _ = profile_tool_run(workload=opts.workload, tool_name=opts.tool,
                              opt=opts.opt, interval=opts.interval,
                              stacks=not opts.no_stacks,
                              out_dir=opts.out_dir)
    print(render_profile(doc, top=opts.top))
    unknown = doc["buckets"][BUCKET_UNKNOWN]["samples"]
    if doc["samples"] and unknown / doc["samples"] > 0.01:
        print(f"error: unattributed bucket above 1% "
              f"({unknown}/{doc['samples']} samples)")
        return 1
    if opts.out_dir:
        print(f"artifacts in {opts.out_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
