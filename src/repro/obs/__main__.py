"""``python -m repro.obs``: the trace CLI (``wrl-trace``)."""

import sys

from .cli import main

sys.exit(main())
