"""``repro.obs``: structured tracing & metrics for the ATOM pipeline.

ATOM's pitch is that analysis data should come from cheap in-process
hooks rather than external traces; this module applies the same idea to
our own pipeline.  It is an LTT-style low-overhead tracer — nested
spans on the monotonic clock, named counters, and histograms — threaded
through the instrumenter, the OM passes, the interpreter, the artifact
cache, and the parallel eval matrix, so a slow or quarantined matrix
cell can be explained from per-phase timings instead of guesswork.

Design rules:

* **Zero cost when disabled.**  The process-wide :data:`TRACE` tracer
  starts disabled; ``TRACE.span(...)`` then returns a shared no-op
  context manager and ``count``/``observe`` return after one boolean
  check.  No hook sits inside the interpreter dispatch loop — the
  hottest call sites are per *program run* or per *compile phase*, and
  the overhead-budget benchmark (:mod:`repro.obs.overhead`) asserts the
  disabled path costs under its budget on the ``BENCH_interp``
  workloads.
* **Monotonic timebase.**  Span timestamps are ``time.monotonic_ns()``,
  which on Linux is a system-wide clock: spans recorded in forked
  worker processes land on the same axis as the parent's, so a merged
  trace lines up without skew correction.
* **Serializable.**  :meth:`Tracer.snapshot` returns a plain-JSON dict
  that crosses process boundaries inside ``TaskResult`` records; the
  parent :meth:`Tracer.merge`-s worker snapshots into one trace.
* **Two export formats.**  JSONL (one event per line, nanosecond
  timestamps — greppable, appendable) and Chrome trace-event JSON
  (microseconds, viewable in Perfetto / ``chrome://tracing``); the
  ``wrl-trace`` CLI converts and summarizes either.

Env knobs: ``WRL_TRACE=PATH`` is the ambient default for every CLI's
``--trace`` flag (``.jsonl`` suffix selects JSONL, anything else Chrome
JSON).
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from pathlib import Path

TRACE_SCHEMA = "wrl-trace/v1"
ENV_TRACE = "WRL_TRACE"
ENV_TRACE_ID = "WRL_TRACE_ID"


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def add(self, **args) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records itself into the tracer on ``__exit__``."""

    __slots__ = ("_tracer", "name", "cat", "args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self):
        self._t0 = time.monotonic_ns()
        return self

    def add(self, **args) -> None:
        """Attach key/value detail to the span (visible in viewers)."""
        self.args.update(args)

    def __exit__(self, exc_type, exc, tb):
        end = time.monotonic_ns()
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._tracer._record(self.name, self.cat, self._t0, end, self.args)
        return False


class Tracer:
    """Span/counter/histogram sink for one process.

    ``enabled`` gates everything; ``_pid`` records which process enabled
    it, so a tracer inherited through ``fork`` (worker processes of the
    eval pool) is recognized as *not owned* and the worker starts a
    fresh capture instead of appending to the parent's copied buffers.
    """

    def __init__(self):
        self.enabled = False
        self._pid = -1
        self.events: list[dict] = []
        self.counters: dict[str, float] = {}
        self.hists: dict[str, list[float]] = {}
        self._tids = threading.local()

    # ---- lifecycle --------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True
        self._pid = os.getpid()

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.events = []
        self.counters = {}
        self.hists = {}

    def owned(self) -> bool:
        """Enabled by *this* process (False in a forked child)."""
        return self.enabled and self._pid == os.getpid()

    # ---- recording --------------------------------------------------------

    def span(self, name: str, cat: str = "", **args):
        """A context manager timing one phase; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, args)

    def count(self, name: str, n: float = 1) -> None:
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + n

    def instant(self, name: str, cat: str = "", **args) -> None:
        """Record a zero-duration marker event (progress heartbeats)."""
        if self.enabled:
            t = time.monotonic_ns()
            self._record(name, cat, t, t, args)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.hists.setdefault(name, []).append(value)

    def _tid(self) -> int:
        tid = getattr(self._tids, "id", None)
        if tid is None:
            tid = self._tids.id = threading.get_native_id()
        return tid

    def _record(self, name, cat, t0_ns, t1_ns, args) -> None:
        self.events.append({
            "name": name, "cat": cat,
            "ts_ns": t0_ns, "dur_ns": max(0, t1_ns - t0_ns),
            "pid": os.getpid(), "tid": self._tid(),
            "args": args,
        })

    # ---- cross-process ----------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-JSON copy of everything recorded so far."""
        return {
            "schema": TRACE_SCHEMA,
            "pid": os.getpid(),
            "events": list(self.events),
            "counters": dict(self.counters),
            "hists": {k: list(v) for k, v in self.hists.items()},
        }

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` from another process into this trace."""
        if not snap:
            return
        self.events.extend(snap.get("events", ()))
        for name, n in snap.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + n
        for name, values in snap.get("hists", {}).items():
            self.hists.setdefault(name, []).extend(values)

    # ---- export -----------------------------------------------------------

    def write(self, path: Path | str) -> Path:
        """Write the trace; ``.jsonl`` suffix selects JSONL, else Chrome."""
        path = Path(path)
        if path.suffix == ".jsonl":
            write_jsonl(self.snapshot(), path)
        else:
            write_chrome(self.snapshot(), path)
        return path


#: The process-wide tracer every pipeline hook reports to.
TRACE = Tracer()


def span(name: str, cat: str = "", **args):
    return TRACE.span(name, cat, **args)


def count(name: str, n: float = 1) -> None:
    TRACE.count(name, n)


def observe(name: str, value: float) -> None:
    TRACE.observe(name, value)


def enabled() -> bool:
    return TRACE.enabled


def trace_path_from_env() -> str | None:
    """The ``WRL_TRACE`` path, or None when tracing is not requested."""
    return os.environ.get(ENV_TRACE) or None


# ---- trace-context ids -------------------------------------------------------

def mint_trace_id() -> str:
    """A fresh 16-hex-char request trace id.

    Short enough to read in a terminal, random enough that collisions
    across a daemon's lifetime are negligible (64 bits).
    """
    import uuid
    return uuid.uuid4().hex[:16]


def trace_id_from_env() -> str | None:
    """The ambient ``WRL_TRACE_ID``, or None when unset."""
    return os.environ.get(ENV_TRACE_ID) or None


# ---- histogram summaries ---------------------------------------------------

def percentile(sorted_values, q: float):
    """Nearest-rank percentile of an already-sorted list (0 when empty).

    Nearest-rank is exact on small samples: ``percentile(vs, 0.9)`` of ten
    values is the 9th, not the maximum (the old ``(9*n)//10`` index was
    biased one rank high and always returned the max for n <= 10).
    """
    n = len(sorted_values)
    if not n:
        return 0
    rank = math.ceil(q * n)           # 1-based nearest rank
    return sorted_values[min(n, max(1, rank)) - 1]


def hist_summary(values) -> dict:
    """count/min/max/mean/p50/p90 over a list of observations.

    Always returns every key — empty and single-element inputs yield
    zeros / the lone value — so consumers can render a summary without
    guarding each field.  All percentiles are nearest-rank via
    :func:`percentile`, including p50: an interpolated median here would
    disagree with every other pXX the system reports on the same data.
    """
    vs = sorted(values)
    n = len(vs)
    if not n:
        return {"count": 0, "min": 0, "max": 0, "mean": 0,
                "p50": 0, "p90": 0}
    return {
        "count": n,
        "min": vs[0],
        "max": vs[-1],
        "mean": sum(vs) / n,
        "p50": percentile(vs, 0.50),
        "p90": percentile(vs, 0.90),
    }


# ---- Chrome trace-event JSON (Perfetto / chrome://tracing) -----------------

def chrome_events(snap: dict) -> list[dict]:
    """Translate a snapshot into Chrome trace-event dicts.

    Spans become complete (``"X"``) events in microseconds; final
    counter values become one ``"C"`` sample each; histogram summaries
    become instant (``"i"``) events.  Process-name metadata labels each
    pid so merged worker traces are distinguishable.
    """
    events: list[dict] = []
    pids = sorted({e["pid"] for e in snap.get("events", ())})
    for pid in pids:
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": f"wrl pid {pid}"}})
    last_ts = 0
    for ev in snap.get("events", ()):
        ts = ev["ts_ns"] / 1000.0
        dur = max(ev["dur_ns"] / 1000.0, 0.001)
        last_ts = max(last_ts, ts + dur)
        events.append({"name": ev["name"], "cat": ev["cat"] or "wrl",
                       "ph": "X", "ts": ts, "dur": dur,
                       "pid": ev["pid"], "tid": ev["tid"],
                       "args": ev["args"]})
    host = snap.get("pid", os.getpid())
    for name, value in sorted(snap.get("counters", {}).items()):
        events.append({"name": name, "cat": "counter", "ph": "C",
                       "ts": last_ts, "pid": host, "tid": 0,
                       "args": {"value": value}})
    for name, values in sorted(snap.get("hists", {}).items()):
        events.append({"name": name, "cat": "histogram", "ph": "i",
                       "ts": last_ts, "pid": host, "tid": 0, "s": "g",
                       "args": hist_summary(values)})
    return events


def to_chrome(snap: dict) -> dict:
    return {
        "traceEvents": chrome_events(snap),
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": snap.get("schema", TRACE_SCHEMA),
            "counters": snap.get("counters", {}),
            "histograms": {name: hist_summary(vals)
                           for name, vals in snap.get("hists", {}).items()},
        },
    }


def write_chrome(snap: dict, path: Path | str) -> None:
    Path(path).write_text(json.dumps(to_chrome(snap), indent=1) + "\n")


# ---- JSONL ------------------------------------------------------------------

def write_jsonl(snap: dict, path: Path | str) -> None:
    """One JSON object per line: a meta header, then spans/counters/hists."""
    lines = [json.dumps({"type": "meta", "schema": snap["schema"],
                         "pid": snap["pid"]})]
    for ev in snap.get("events", ()):
        lines.append(json.dumps({"type": "span", **ev}))
    for name, value in sorted(snap.get("counters", {}).items()):
        lines.append(json.dumps({"type": "counter", "name": name,
                                 "value": value}))
    for name, values in sorted(snap.get("hists", {}).items()):
        lines.append(json.dumps({"type": "hist", "name": name,
                                 "values": values}))
    Path(path).write_text("\n".join(lines) + "\n")


def read_jsonl(path: Path | str) -> dict:
    """Inverse of :func:`write_jsonl`: a snapshot-shaped dict."""
    snap = {"schema": TRACE_SCHEMA, "pid": 0, "events": [],
            "counters": {}, "hists": {}}
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        kind = row.pop("type", None)
        if kind == "meta":
            snap["schema"] = row.get("schema", TRACE_SCHEMA)
            snap["pid"] = row.get("pid", 0)
        elif kind == "span":
            snap["events"].append(row)
        elif kind == "counter":
            snap["counters"][row["name"]] = row["value"]
        elif kind == "hist":
            snap["hists"][row["name"]] = row["values"]
    return snap


def load_trace(path: Path | str) -> dict:
    """Load either trace format back into a snapshot-shaped dict.

    Chrome files lose nanosecond precision (they store microseconds);
    timestamps are rounded back to whole nanoseconds on import.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        return read_jsonl(path)
    doc = json.loads(path.read_text())
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: neither JSONL nor Chrome trace JSON")
    other = doc.get("otherData", {})
    snap = {"schema": other.get("schema", TRACE_SCHEMA), "pid": 0,
            "events": [], "counters": dict(other.get("counters", {})),
            "hists": {}}
    for ev in doc["traceEvents"]:
        if ev.get("ph") != "X":
            continue
        snap["events"].append({
            "name": ev["name"], "cat": ev.get("cat", ""),
            "ts_ns": round(ev["ts"] * 1000),
            "dur_ns": round(ev["dur"] * 1000),
            "pid": ev.get("pid", 0), "tid": ev.get("tid", 0),
            "args": ev.get("args", {}),
        })
    return snap


__all__ = [
    "TRACE", "TRACE_SCHEMA", "ENV_TRACE", "ENV_TRACE_ID", "Tracer",
    "span", "count", "observe", "enabled", "trace_path_from_env",
    "mint_trace_id", "trace_id_from_env",
    "hist_summary", "percentile", "chrome_events", "to_chrome",
    "write_chrome", "write_jsonl", "read_jsonl", "load_trace",
]
