"""``wrl-trace``: inspect and convert pipeline traces.

Two subcommands over the files ``--trace`` flags produce:

* ``summary TRACE`` — aggregate spans per (category, name): count,
  total/mean/max duration; then counters and histogram summaries.
* ``convert IN OUT`` — re-emit a trace in the format selected by the
  output suffix (``.jsonl`` for JSONL, anything else for Chrome
  trace-event JSON).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import hist_summary, load_trace, write_chrome, write_jsonl


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.3f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    return f"{ns / 1e3:.1f}us"


def summarize(snap: dict, out=sys.stdout) -> None:
    rows: dict[tuple[str, str], list[int]] = {}
    for ev in snap.get("events", ()):
        key = (ev.get("cat", ""), ev["name"])
        rows.setdefault(key, []).append(ev["dur_ns"])
    pids = {ev["pid"] for ev in snap.get("events", ())}
    print(f"{len(snap.get('events', ()))} spans across "
          f"{len(pids) or 1} process(es)", file=out)
    if rows:
        print(f"  {'cat/name':<40} {'count':>6} {'total':>10} "
              f"{'mean':>10} {'max':>10}", file=out)
        for (cat, name), durs in sorted(
                rows.items(), key=lambda kv: -sum(kv[1])):
            label = f"{cat}/{name}" if cat else name
            print(f"  {label:<40} {len(durs):>6} "
                  f"{_fmt_ns(sum(durs)):>10} "
                  f"{_fmt_ns(sum(durs) / len(durs)):>10} "
                  f"{_fmt_ns(max(durs)):>10}", file=out)
    counters = snap.get("counters", {})
    if counters:
        print("counters:", file=out)
        for name, value in sorted(counters.items()):
            print(f"  {name:<40} {value:>14,g}", file=out)
    hists = snap.get("hists", {})
    if hists:
        print("histograms:", file=out)
        for name, values in sorted(hists.items()):
            s = hist_summary(values)
            print(f"  {name:<40} n={s['count']} mean={s['mean']:,.0f} "
                  f"p50={s['p50']:,.0f} p90={s['p90']:,.0f} "
                  f"max={s['max']:,.0f}", file=out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="wrl-trace",
        description="Summarize or convert repro.obs pipeline traces.")
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_sum = sub.add_parser("summary", help="aggregate a trace file")
    p_sum.add_argument("trace", help="trace file (.jsonl or Chrome JSON)")
    p_conv = sub.add_parser("convert",
                            help="rewrite a trace in another format")
    p_conv.add_argument("input")
    p_conv.add_argument("output",
                        help=".jsonl for JSONL, else Chrome trace JSON")
    args = parser.parse_args(argv)

    try:
        if args.cmd == "summary":
            summarize(load_trace(args.trace))
        else:
            snap = load_trace(args.input)
            out = Path(args.output)
            if out.suffix == ".jsonl":
                write_jsonl(snap, out)
            else:
                write_chrome(snap, out)
            print(f"wrote {out}")
    except (OSError, ValueError, KeyError) as exc:
        print(f"wrl-trace: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
