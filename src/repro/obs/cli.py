"""``wrl-trace``: inspect and convert pipeline traces and profiles.

Three subcommands:

* ``summary TRACE`` — aggregate spans per (category, name): count,
  total/mean/max duration; then counters and histogram summaries.
  ``--top N`` ranks spans/counters/histograms by total time (or
  value/count) and shows only the N largest of each.
  ``--trace-id ID`` instead reconstructs ONE request's chronological
  timeline from a merged trace: every event stamped with (or linked
  to) that id, ordered by timestamp — the client span, the daemon's
  queue/execute spans, and the worker's compile/interpret spans line
  up on the shared monotonic clock.
* ``convert IN OUT`` — re-emit a trace in the format selected by the
  output suffix (``.jsonl`` for JSONL, anything else for Chrome
  trace-event JSON).
* ``profile PROFILE`` — summarize a guest profile artifact produced by
  ``wrl-run --profile`` (top-K locations, pristine vs. overhead split,
  inclusive/exclusive frame tables); ``--collapsed OUT`` extracts the
  flamegraph stacks.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import hist_summary, load_trace, write_chrome, write_jsonl


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.3f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    return f"{ns / 1e3:.1f}us"


def span_rows(snap: dict) -> list[tuple[str, list[int]]]:
    """(label, durations) per span key, ranked by total duration.

    Ties break on the label, so equal-duration rows always print in the
    same order regardless of event arrival order.
    """
    rows: dict[tuple[str, str], list[int]] = {}
    for ev in snap.get("events", ()):
        key = (ev.get("cat", ""), ev["name"])
        rows.setdefault(key, []).append(ev["dur_ns"])
    labeled = [(f"{cat}/{name}" if cat else name, durs)
               for (cat, name), durs in rows.items()]
    labeled.sort(key=lambda kv: (-sum(kv[1]), kv[0]))
    return labeled


def request_events(snap: dict, trace_id: str) -> list[dict]:
    """Every event of one request, chronological.

    Matches events whose ``args.trace_id`` is the id *or* whose
    ``args.linked_to`` is (dedup-follower markers pointing at the
    executing request), so the timeline shows coalesced requests too.
    """
    picked = [ev for ev in snap.get("events", ())
              if ev.get("args", {}).get("trace_id") == trace_id
              or ev.get("args", {}).get("linked_to") == trace_id]
    picked.sort(key=lambda ev: (ev["ts_ns"], -ev["dur_ns"]))
    return picked


def timeline(snap: dict, trace_id: str, out=None) -> int:
    """Print one request's client→queue→batch→worker timeline; returns
    the number of events shown (0 = id not present in the trace)."""
    out = out if out is not None else sys.stdout
    events = request_events(snap, trace_id)
    if not events:
        print(f"no events for trace id {trace_id}", file=out)
        return 0
    t0 = events[0]["ts_ns"]
    pids = {ev["pid"] for ev in events}
    print(f"trace {trace_id}: {len(events)} event(s) across "
          f"{len(pids)} process(es)", file=out)
    print(f"  {'offset':>10} {'dur':>10} {'pid':>7} "
          f"{'cat/name':<28} detail", file=out)
    for ev in events:
        cat = ev.get("cat", "")
        label = f"{cat}/{ev['name']}" if cat else ev["name"]
        args = ev.get("args", {})
        detail = " ".join(
            f"{k}={v}" for k, v in sorted(args.items())
            if k not in ("trace_id",) and isinstance(v, (str, int, float,
                                                         bool)))
        print(f"  {_fmt_ns(ev['ts_ns'] - t0):>10} "
              f"{_fmt_ns(ev['dur_ns']):>10} {ev['pid']:>7} "
              f"{label:<28} {detail}", file=out)
    return len(events)


def summarize(snap: dict, out=None, top: int | None = None) -> None:
    # Resolve stdout at call time, not def time: the interpreter-wide
    # stream may be redirected (or replaced by a test harness) between
    # import and use.
    out = out if out is not None else sys.stdout
    rows = span_rows(snap)
    pids = {ev["pid"] for ev in snap.get("events", ())}
    print(f"{len(snap.get('events', ()))} spans across "
          f"{len(pids) or 1} process(es)", file=out)
    if rows:
        shown = rows if top is None else rows[:top]
        print(f"  {'cat/name':<40} {'count':>6} {'total':>10} "
              f"{'mean':>10} {'max':>10}", file=out)
        for label, durs in shown:
            print(f"  {label:<40} {len(durs):>6} "
                  f"{_fmt_ns(sum(durs)):>10} "
                  f"{_fmt_ns(sum(durs) / len(durs)):>10} "
                  f"{_fmt_ns(max(durs)):>10}", file=out)
        if top is not None and len(rows) > top:
            print(f"  ... {len(rows) - top} more span group(s)", file=out)
    counters = snap.get("counters", {})
    if counters:
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0])) \
            if top is not None else sorted(counters.items())
        print("counters:", file=out)
        for name, value in ranked[:top]:
            print(f"  {name:<40} {value:>14,g}", file=out)
    hists = snap.get("hists", {})
    if hists:
        ranked = sorted(hists.items(),
                        key=lambda kv: (-len(kv[1]), kv[0])) \
            if top is not None else sorted(hists.items())
        print("histograms:", file=out)
        for name, values in ranked[:top]:
            s = hist_summary(values)
            print(f"  {name:<40} n={s['count']} mean={s['mean']:,.0f} "
                  f"p50={s['p50']:,.0f} p90={s['p90']:,.0f} "
                  f"max={s['max']:,.0f}", file=out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="wrl-trace",
        description="Summarize or convert repro.obs pipeline traces.")
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_sum = sub.add_parser("summary", help="aggregate a trace file")
    p_sum.add_argument("trace", help="trace file (.jsonl or Chrome JSON)")
    p_sum.add_argument("--top", type=int, default=None, metavar="N",
                       help="show only the N largest spans/counters/"
                            "histograms (ranked by total time, value, "
                            "and count)")
    p_sum.add_argument("--trace-id", default=None, metavar="ID",
                       help="print the chronological timeline of one "
                            "request (events stamped with or linked to "
                            "ID) instead of the aggregate view")
    p_conv = sub.add_parser("convert",
                            help="rewrite a trace in another format")
    p_conv.add_argument("input")
    p_conv.add_argument("output",
                        help=".jsonl for JSONL, else Chrome trace JSON")
    p_prof = sub.add_parser("profile",
                            help="summarize a guest profile artifact")
    p_prof.add_argument("profile",
                        help="profile JSON from wrl-run --profile")
    p_prof.add_argument("--top", type=int, default=10, metavar="K",
                        help="locations/frames to show (default 10)")
    p_prof.add_argument("--collapsed", default=None, metavar="OUT",
                        help="extract collapsed flamegraph stacks")
    args = parser.parse_args(argv)

    try:
        if args.cmd == "summary":
            if args.top is not None and args.top < 1:
                parser.error("--top must be >= 1")
            if args.trace_id:
                shown = timeline(load_trace(args.trace), args.trace_id)
                return 0 if shown else 1
            summarize(load_trace(args.trace), top=args.top)
        elif args.cmd == "profile":
            from .runtime import load_profile, render_profile, \
                write_collapsed
            doc = load_profile(args.profile)
            print(render_profile(doc, top=args.top))
            if args.collapsed:
                if not doc.get("collapsed"):
                    print("wrl-trace: profile has no collapsed stacks "
                          "(run with --call-stacks)", file=sys.stderr)
                    return 1
                write_collapsed(doc, args.collapsed)
                print(f"wrote {args.collapsed}")
        else:
            snap = load_trace(args.input)
            out = Path(args.output)
            if out.suffix == ".jsonl":
                write_jsonl(snap, out)
            else:
                write_chrome(snap, out)
            print(f"wrote {out}")
    except (OSError, ValueError, KeyError) as exc:
        print(f"wrl-trace: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
