"""``wrl-annotate``: overlay profile samples on disassembly.

Takes an executable (WOF) and a profile artifact produced by
``wrl-run --profile`` / :mod:`repro.obs.runtime` and renders the text
segment with a left margin of per-instruction sample counts, cycle
percentages, and an attribution marker::

      samples  cycles%
         1021   12.4%    0x12000004c:  addq r1, r2, r3
           37    0.4% b  0x120000050:  stq r9, 0(sp)

Markers: blank = pristine (original program), ``b`` = save bracket,
``g`` = call glue, ``i`` = inlined splice, ``a`` = analysis routine,
``?`` = unattributed.  By default only the hottest procedures are
shown; ``--full`` renders the whole text segment.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..isa import disasm
from ..objfile.module import Module
from ..objfile.sections import TEXT
from .runtime import (Attributor, BUCKET_ANALYSIS, BUCKET_BRACKET,
                      BUCKET_ORIG, BUCKET_SPLICE, BUCKET_UNKNOWN,
                      load_profile, pristine_split)

_MARKERS = {
    BUCKET_ORIG: " ",
    BUCKET_BRACKET: "b",
    BUCKET_SPLICE: "i",
    BUCKET_ANALYSIS: "a",
    BUCKET_UNKNOWN: "?",
}
#: Width of the sample margin: ``{n:>8} {pct:>6.1f}% {mark}`` = 18 cols.
_MARGIN = " " * 18


def _proc_ranges(attr: Attributor, names: list[str]) -> list[tuple[int, int]]:
    """Text ranges for the named procedures (app FUNCs and analysis
    routines), in address order."""
    ranges = []
    want = set(names)
    for start, end, name in attr._funcs:
        if name in want and end > start:
            ranges.append((start, end))
    anal = attr._anal
    for i, (start, name) in enumerate(anal):
        if name in want:
            end = anal[i + 1][0] if i + 1 < len(anal) else attr.anal_end
            ranges.append((start, end))
    ranges.sort()
    return ranges


def hot_procs(doc: dict, top: int) -> list[str]:
    """The ``top`` distinct hottest location names, by charged cycles."""
    names: list[str] = []
    for row in doc.get("procs", ()):
        if row["name"] not in names:
            names.append(row["name"])
        if len(names) >= top:
            break
    return names


def render_annotated(module: Module, doc: dict, *, top: int | None = 5,
                     procs: list[str] | None = None) -> str:
    """Render annotated disassembly for a module + profile pair."""
    attr = Attributor(module)
    samples = {int(pc, 16): row for pc, row in doc.get("pcs", {}).items()}
    total_cycles = max(1, doc.get("sampled_cycles") or 0)

    def margin(pc: int) -> str:
        row = samples.get(pc)
        if row is None:
            return _MARGIN
        pct = 100.0 * row.get("cycles", 0) / total_cycles
        kind = row.get("kind", "")
        mark = "g" if kind == "glue" else _MARKERS.get(row["bucket"], "?")
        return f"{row['n']:>8} {pct:>6.1f}% {mark}"

    symbols = disasm.symbol_map(module)
    for value, name in attr._anal:
        symbols.setdefault(value, f"anal${name}")

    text = module.section(TEXT)
    base = text.vaddr or 0
    data = bytes(text.data)

    if procs:
        ranges = _proc_ranges(attr, procs)
    elif top is not None:
        ranges = _proc_ranges(attr, hot_procs(doc, top))
    else:
        ranges = [(base, base + len(data))]

    split = pristine_split(doc)
    total = max(1, split["total"])
    out = [f"{doc.get('module', module.name)}: {doc['samples']} samples, "
           f"interval {doc['interval']}, {doc['cycles']} cycles",
           f"pristine {100.0 * split['pristine'] / total:.1f}%  "
           f"overhead {100.0 * split['overhead'] / total:.1f}%  "
           f"unknown {100.0 * split['unknown'] / total:.1f}%",
           f"{'samples':>8} {'cycles%':>7}"]
    for start, end in ranges:
        lo = max(start, base)
        hi = min(end, base + len(data))
        if hi <= lo:
            continue
        out.append("")
        out.extend(disasm.disassemble(data[lo - base:hi - base], lo,
                                      symbols, annotate=margin))
    return "\n".join(out)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="wrl-annotate",
        description="overlay profile sample counts on disassembly")
    ap.add_argument("module", help="executable (WOF) the profile ran")
    ap.add_argument("profile", help="profile artifact (wrl-profile/v1)")
    ap.add_argument("--top", type=int, default=5,
                    help="annotate the N hottest procedures (default 5)")
    ap.add_argument("--procs", default=None,
                    help="comma-separated procedure names to annotate")
    ap.add_argument("--full", action="store_true",
                    help="annotate the entire text segment")
    ap.add_argument("-o", "--out", default=None,
                    help="write to a file instead of stdout")
    opts = ap.parse_args(argv)
    try:
        module = Module.load(opts.module)
        doc = load_profile(opts.profile)
    except (OSError, ValueError) as exc:
        print(f"wrl-annotate: {exc}", file=sys.stderr)
        return 1
    procs = [p for p in opts.procs.split(",") if p] if opts.procs else None
    text = render_annotated(module, doc,
                            top=None if opts.full else opts.top,
                            procs=procs)
    if opts.out:
        Path(opts.out).write_text(text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
