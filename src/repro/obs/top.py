"""``wrl-top``: a live dashboard for a running ``wrl-serve`` daemon.

``top`` for the instrumentation service: polls the daemon's ``stats``
and ``metrics`` ops on an interval and renders request rates (with
sparklines built from successive counter deltas), latency percentiles
per op, queue depth, dedup/shed/error counters, the SLO block, and the
per-tenant cache table.

Rendering is a pure function (:func:`render`) over the two reply
documents plus a client-side rate history — trivially testable without
a terminal — wrapped in either a curses screen (interactive TTYs) or a
plain clear-and-reprint loop (``--plain``, pipes, dumb terminals).
``--once`` prints a single frame and exits, which is what scripts and
the test suite use.
"""

from __future__ import annotations

import argparse
import sys
import time

#: Eight-level bar glyphs, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Client-side rate samples kept for sparklines.
HISTORY = 60


def sparkline(values, width: int = 24) -> str:
    """Render a numeric series as a fixed-width sparkline.

    Scaled to the series' own max (flat-zero series render as all-low
    bars); the *last* ``width`` samples are shown, so the right edge is
    "now".
    """
    values = list(values)[-width:]
    if not values:
        return " " * width
    peak = max(values)
    out = []
    for v in values:
        if peak <= 0:
            out.append(SPARK_CHARS[0])
        else:
            idx = int((v / peak) * (len(SPARK_CHARS) - 1) + 0.5)
            out.append(SPARK_CHARS[max(0, min(idx, len(SPARK_CHARS) - 1))])
    return "".join(out).rjust(width, SPARK_CHARS[0])


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}GiB"


def _rate_from_metrics(metrics_doc: dict, name: str,
                       window: str = "10s") -> float | None:
    entry = (metrics_doc or {}).get("metrics", {}).get(name)
    if not entry:
        return None
    return entry.get("rates", {}).get(window)


def render(stats: dict, metrics_doc: dict | None = None,
           history=(), width: int = 80) -> str:
    """One dashboard frame as a string (pure; no terminal I/O).

    ``stats`` is the ``stats`` op document; ``metrics_doc`` the JSON
    half of the ``metrics`` op (None degrades gracefully — rates fall
    back to the client-side ``history`` of requests/sec samples).
    """
    lines: list[str] = []
    uptime = stats.get("uptime_s", 0.0)
    lines.append(
        f"wrl-top — uptime {uptime:8.1f}s   jobs {stats.get('jobs', '?')}"
        f"   queue {stats.get('queue_depth', 0)}/{stats.get('max_queue', '?')}"
        f"   batch window {stats.get('batch_window_s', 0) * 1000:.0f}ms")
    lines.append("─" * min(width, 80))

    # Request rates: prefer the daemon's rolling windows, fall back to
    # client-side deltas between polls.
    rate_1s = _rate_from_metrics(metrics_doc, "wrl_requests_total", "1s")
    rate_10s = _rate_from_metrics(metrics_doc, "wrl_requests_total", "10s")
    rate_60s = _rate_from_metrics(metrics_doc, "wrl_requests_total", "60s")
    spark = sparkline(history)
    if rate_10s is not None:
        lines.append(f"req/s   1s {rate_1s:8.1f}   10s {rate_10s:8.1f}"
                     f"   60s {rate_60s:8.1f}   {spark}")
    else:
        last = history[-1] if history else 0.0
        lines.append(f"req/s   now {last:8.1f}   (metrics off)   {spark}")

    requests = stats.get("requests", {})
    total = sum(requests.values())
    per_op = "  ".join(f"{op}={requests.get(op, 0)}"
                       for op in ("eval", "run", "stats", "metrics",
                                  "ping") if requests.get(op))
    lines.append(f"requests {total}   {per_op}")
    lines.append(
        f"dedup {stats.get('dedup_hits', 0)} "
        f"(rate {stats.get('dedup_rate', 0.0):.2f})   "
        f"shed {stats.get('overloaded', 0)}   "
        f"cancelled {stats.get('cancelled', 0)}   "
        f"errors {stats.get('errors', 0)}   "
        f"pool rebuilds {stats.get('pool_rebuilds', 0)}")

    lat = stats.get("latency_ms", {})
    lines.append(
        f"latency ms  n={lat.get('count', 0)}  "
        f"p50={lat.get('p50', 0):.1f}  p90={lat.get('p90', 0):.1f}  "
        f"p99={lat.get('p99', 0):.1f}  mean={lat.get('mean', 0):.1f}  "
        f"max={lat.get('max', 0):.1f}")
    by_op = stats.get("latency_ms_by_op", {})
    for op in sorted(by_op):
        s = by_op[op]
        if not s.get("count"):
            continue
        lines.append(f"  {op:<5} n={s['count']:<6} p50={s['p50']:.1f}  "
                     f"p90={s['p90']:.1f}  p99={s['p99']:.1f}  "
                     f"mean={s['mean']:.1f}")

    slo = stats.get("slo", {})
    if slo.get("configured"):
        current = slo.get("current", {})
        breaches = slo.get("breaches", {})
        parts = []
        if slo.get("p99_ms") is not None:
            mark = "BREACH" if breaches.get("p99_ms") else "ok"
            parts.append(f"p99 {current.get('p99_ms', 0):.1f}ms"
                         f"/{slo['p99_ms']:.0f}ms [{mark}"
                         f"{' x' + str(breaches['p99_ms']) if breaches.get('p99_ms') else ''}]")
        if slo.get("error_rate") is not None:
            mark = "BREACH" if breaches.get("error_rate") else "ok"
            parts.append(f"err {current.get('error_rate', 0):.3f}"
                         f"/{slo['error_rate']:.3f} [{mark}"
                         f"{' x' + str(breaches['error_rate']) if breaches.get('error_rate') else ''}]")
        lines.append("slo (60s)   " + "   ".join(parts))

    batch = stats.get("batch_size", {})
    if batch.get("count"):
        lines.append(f"batches {stats.get('batches', 0)}  "
                     f"occupancy p50={batch.get('p50', 0):.0f} "
                     f"p90={batch.get('p90', 0):.0f} "
                     f"max={batch.get('max', 0):.0f}")

    tenants = stats.get("tenants", {})
    if tenants:
        lines.append("")
        lines.append(f"{'tenant':<20} {'blobs':>8} {'bytes':>12} "
                     f"{'cap':>6}")
        for name in sorted(tenants):
            usage = tenants[name]
            lines.append(
                f"{name:<20} {usage.get('blobs', 0):>8} "
                f"{_fmt_bytes(usage.get('bytes', 0)):>12} "
                f"{usage.get('cap', 0):>6}")
    return "\n".join(lines)


class RateTracker:
    """Client-side requests/sec from successive ``stats`` snapshots."""

    def __init__(self):
        self._last: tuple[float, int] | None = None
        self.history: list[float] = []

    def update(self, stats: dict, now: float | None = None) -> None:
        now = time.monotonic() if now is None else now
        total = sum(stats.get("requests", {}).values())
        if self._last is not None:
            t0, n0 = self._last
            dt = now - t0
            if dt > 0:
                self.history.append(max(0.0, (total - n0) / dt))
                del self.history[:-HISTORY]
        self._last = (now, total)


def _poll(client):
    """(stats, metrics_doc|None) — metrics degrades to None when the
    registry is disabled or the op is unavailable."""
    stats = client.stats()
    metrics_doc = None
    try:
        reply = client.metrics()
        if reply.get("enabled"):
            metrics_doc = reply.get("metrics")
    except Exception:                          # noqa: BLE001
        metrics_doc = None
    return stats, metrics_doc


def _loop_plain(client, interval: float, count: int | None,
                clear: bool) -> int:
    tracker = RateTracker()
    n = 0
    while True:
        stats, metrics_doc = _poll(client)
        tracker.update(stats)
        frame = render(stats, metrics_doc, tracker.history)
        if clear:
            sys.stdout.write("\x1b[2J\x1b[H")
        print(frame, flush=True)
        n += 1
        if count is not None and n >= count:
            return 0
        time.sleep(interval)


def _loop_curses(client, interval: float, count: int | None) -> int:
    import curses

    def run(screen) -> int:
        curses.curs_set(0)
        screen.nodelay(True)
        tracker = RateTracker()
        n = 0
        while True:
            stats, metrics_doc = _poll(client)
            tracker.update(stats)
            height, width = screen.getmaxyx()
            frame = render(stats, metrics_doc, tracker.history,
                           width=width - 1)
            screen.erase()
            for i, line in enumerate(frame.splitlines()):
                if i >= height - 1:
                    break
                try:
                    screen.addnstr(i, 0, line, width - 1)
                except curses.error:
                    pass
            screen.addnstr(min(height - 1, i + 2), 0,
                           "q to quit", width - 1)
            screen.refresh()
            n += 1
            if count is not None and n >= count:
                return 0
            deadline = time.monotonic() + interval
            while time.monotonic() < deadline:
                try:
                    if screen.getch() in (ord("q"), ord("Q")):
                        return 0
                except curses.error:
                    pass
                time.sleep(0.05)

    return curses.wrapper(run)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="wrl-top",
        description="Live dashboard for a running wrl-serve daemon: "
                    "request rates, latency percentiles, SLO status, "
                    "tenant cache usage.")
    parser.add_argument("--server", default=None, metavar="SOCKET",
                        help="daemon socket (default: $WRL_SERVER or "
                             "./.repro-serve.sock)")
    parser.add_argument("--interval", type=float, default=1.0,
                        metavar="SECONDS",
                        help="poll interval (default 1s)")
    parser.add_argument("--count", type=int, default=None, metavar="N",
                        help="exit after N frames (default: run until "
                             "interrupted)")
    parser.add_argument("--once", action="store_true",
                        help="print one frame and exit (scriptable; "
                             "implies --plain)")
    parser.add_argument("--plain", action="store_true",
                        help="plain reprint loop instead of curses "
                             "(automatic when stdout is not a tty)")
    args = parser.parse_args(argv)
    if args.interval <= 0:
        parser.error("--interval must be > 0")
    if args.count is not None and args.count < 1:
        parser.error("--count must be >= 1")

    from ..serve.client import ServeClient
    from ..serve.protocol import ServeError
    client = ServeClient(args.server)
    count = 1 if args.once else args.count
    is_tty = getattr(sys.stdout, "isatty", lambda: False)()
    plain = args.plain or args.once or not is_tty
    try:
        if plain:
            # --once prints a single frame with no screen clearing.
            return _loop_plain(client, args.interval, count,
                               clear=not args.once and is_tty)
        return _loop_curses(client, args.interval, count)
    except ServeError as exc:
        print(f"wrl-top: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
