"""The observability overhead budget (``python -m repro.obs.overhead``).

The tracer's contract is *zero cost when disabled*: every hook sits
outside the interpreter dispatch loop, so a run with tracing off must
be indistinguishable from a build without the tracing layer at all.
This benchmark enforces that as a budget, DBI-survey style — overhead
accounting is what makes an instrumentation system trustworthy.

For each ``BENCH_interp`` workload it interleaves two variants:

* **hooked** — the shipped path: :func:`repro.machine.run_module` with
  the process tracer disabled (its per-run hook reduces to one
  attribute check) and no sampler (one ``is None`` test per run);
* **detached** — the identical run driven without the observability
  layer at all: the interpreter's dispatch loop replicated inline
  (``Machine`` + raw superblock loop + ``RunResult`` assembly), with
  neither the tracer branch nor the sampler branch present.

Since PC sampling lives behind a single ``sampler is None`` check in
:meth:`Cpu.run`, this comparison also enforces the profiler's
zero-cost-when-off contract — the check-profile CI lane runs this
module for exactly that reason.

Throughput is best-of-N per variant; the run fails when the hooked
path's insts/sec falls more than ``--budget`` (default 2%) below the
detached path on any workload.  The committed ``BENCH_interp.json``
baseline, when present, is reported alongside — and enforced at the
same budget with ``--strict`` (for same-machine regression gating; the
default stays off because wall-clock numbers do not transfer between
hosts).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from ..machine import run_module
from ..machine.loader import Machine, RunResult
from ..workloads import WORKLOAD_NAMES, build_workload
from . import TRACE

OVERHEAD_SCHEMA = "repro-obs-overhead/v1"
DEFAULT_WORKLOADS = ("sieve", "matrix", "quick", "crc")
DEFAULT_BUDGET = 0.02
_MAX_INSTS = 2_000_000_000


def _run_hooked(module) -> int:
    result = run_module(module, max_insts=_MAX_INSTS)
    return result.inst_count


def _run_detached(module) -> int:
    """The pre-observability run path, byte for byte.

    Inlines the interpreter loop from :meth:`Cpu.run` *without* the
    ``sampler is None`` entry check, so the measured baseline carries
    zero observability residue: any cost the shipped loop pays for
    being sampleable shows up as hooked-vs-detached overhead.
    """
    from ..machine.cpu import BudgetExhausted
    from ..machine.syscalls import ExitProgram

    machine = Machine(module)
    cpu = machine.cpu
    index = cpu._index_of(module.entry)
    dispatch = cpu._dispatch
    code = cpu._code
    stats = cpu.stats
    cpu._jit_limit[0] = _MAX_INSTS
    fused_safe = _MAX_INSTS - cpu._max_fused
    try:
        while stats[1] <= fused_safe:
            index = dispatch[index]()
        while True:
            if stats[1] >= _MAX_INSTS:
                raise BudgetExhausted("instruction budget exhausted",
                                      cpu.text_base + 4 * index)
            index = code[index]()
    except ExitProgram as exc:
        status = exc.status
    result = RunResult(
        status=status,
        stdout=bytes(machine.kernel.stdout),
        stderr=bytes(machine.kernel.stderr),
        files={k: bytes(v) for k, v in machine.kernel.files.items()},
        cycles=machine.cpu.cycles,
        inst_count=machine.cpu.inst_count,
        heap_base=machine.heap_base,
        initial_sp=machine.initial_sp,
    )
    return result.inst_count


def measure_workload(name: str, reps: int = 5) -> dict:
    """Best-of-N insts/sec for both variants, reps interleaved so clock
    drift and cache warmth hit both equally."""
    module = build_workload(name)
    insts = _run_hooked(module)          # warmup (lazy superblock JIT)
    _run_detached(module)
    best = {"hooked": None, "detached": None}
    for _ in range(max(1, reps)):
        for label, fn in (("hooked", _run_hooked),
                          ("detached", _run_detached)):
            t0 = time.perf_counter()
            fn(module)
            elapsed = time.perf_counter() - t0
            if best[label] is None or elapsed < best[label]:
                best[label] = elapsed
    hooked_ips = insts / best["hooked"]
    detached_ips = insts / best["detached"]
    return {
        "workload": name,
        "insts": insts,
        "hooked_ips": round(hooked_ips),
        "detached_ips": round(detached_ips),
        #: > 0 means the hooked (disabled-tracing) path is slower.
        "overhead": round(1.0 - hooked_ips / detached_ips, 4),
    }


def run_overhead(workloads=DEFAULT_WORKLOADS, reps: int = 5,
                 budget: float = DEFAULT_BUDGET) -> dict:
    """Measure every workload; re-measure once with more reps before
    declaring a budget violation, so one noisy interval cannot fail the
    lane."""
    if TRACE.enabled:
        raise RuntimeError("overhead benchmark requires tracing disabled")
    rows = []
    for name in workloads:
        row = measure_workload(name, reps=reps)
        if row["overhead"] > budget:
            row = measure_workload(name, reps=reps * 2)
        rows.append(row)
    baseline = _baseline_ips()
    for row in rows:
        base = baseline.get(row["workload"])
        if base:
            row["baseline_ips"] = base
            row["vs_baseline"] = round(row["hooked_ips"] / base, 4)
    return {
        "schema": OVERHEAD_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "budget": budget,
        "reps": reps,
        "rows": rows,
        "ok": all(row["overhead"] <= budget for row in rows),
    }


def _baseline_ips() -> dict[str, int]:
    """fused insts/sec per workload from the committed bench baseline."""
    from ..perf.bench import load_report
    try:
        report = load_report()
    except ValueError:
        return {}
    if not report:
        return {}
    return {name: row.get("jit_ips") or row["fused_ips"]
            for name, row in report["interpreter"].items()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs-overhead",
        description="Assert the disabled tracing path stays within its "
                    "overhead budget on BENCH_interp workloads.")
    parser.add_argument("--workloads", default=",".join(DEFAULT_WORKLOADS),
                        help="comma-separated workload names")
    parser.add_argument("--reps", type=int, default=5,
                        help="timed repetitions per variant")
    parser.add_argument("--budget", type=float, default=DEFAULT_BUDGET,
                        help="max tolerated slowdown (fraction, e.g. 0.02)")
    parser.add_argument("--strict", action="store_true",
                        help="also fail when hooked insts/sec falls more "
                             "than the budget below the committed "
                             "BENCH_interp.json baseline (same-machine "
                             "gating only)")
    parser.add_argument("--quick", action="store_true",
                        help="one workload, fewer reps")
    parser.add_argument("--out", default=None, help="JSON report path")
    args = parser.parse_args(argv)

    workloads = tuple(args.workloads.split(","))
    unknown = [w for w in workloads if w not in WORKLOAD_NAMES]
    if unknown:
        parser.error(f"--workloads: unknown {', '.join(unknown)}")
    if args.reps < 1:
        parser.error("--reps must be at least 1")
    if not 0 < args.budget < 1:
        parser.error("--budget must be a fraction in (0, 1)")
    reps = args.reps
    if args.quick:
        workloads, reps = workloads[:1], min(reps, 2)

    report = run_overhead(workloads, reps=reps, budget=args.budget)
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")

    failed = False
    for row in report["rows"]:
        over = row["overhead"]
        verdict = "ok" if over <= args.budget else "OVER BUDGET"
        line = (f"  {row['workload']}: hooked {row['hooked_ips']:,} "
                f"vs detached {row['detached_ips']:,} insts/s "
                f"({over:+.2%}) {verdict}")
        if "vs_baseline" in row:
            line += f"; {row['vs_baseline']:.3f}x committed baseline"
            if args.strict and row["vs_baseline"] < 1.0 - args.budget:
                line += " STRICT FAIL"
                failed = True
        print(line)
        failed = failed or over > args.budget
    print(f"disabled-tracing budget {args.budget:.0%}: "
          f"{'FAIL' if failed else 'pass'}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
