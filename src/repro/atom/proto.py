"""AddCallProto: the analysis-procedure prototype language.

Before an instrumentation routine may request a call to an analysis
procedure, it must declare the procedure's prototype, e.g.::

    AddCallProto("CondBranch(int, VALUE)")
    AddCallProto("OpenFile(int)")
    AddCallProto("Log(char *, REGV, long[])")

Types are the standard C scalar types plus the paper's two special ones:

* ``REGV`` — the instrumentation-time argument is a *register number*; at
  run time the register's contents are passed;
* ``VALUE`` — the instrumentation-time argument is one of the sentinels
  ``EffAddrValue`` (the memory address a load/store references) or
  ``BrCondValue`` (zero when the conditional branch will fall through,
  non-zero when it will be taken).

``char *`` passes a string and ``T[]`` an array: ATOM copies the data into
the analysis data region and passes its address (footnote 4 of the paper:
"ATOM allows passing of arrays as arguments").

A prototype may carry a leading ``noinline`` qualifier::

    AddCallProto("noinline Count(int)")

which keeps the routine call-based even at optimization level O4 (useful
when the tool relies on the routine executing at its own address, e.g.
for self-profiling).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum


class ProtoError(Exception):
    pass


class ParamKind(Enum):
    INT = "int"          # any integer scalar, materialized as a constant
    STRING = "string"    # char *
    ARRAY = "array"      # T[]
    REGV = "regv"        # register contents at run time
    VALUE = "value"      # EffAddrValue / BrCondValue


@dataclass(frozen=True)
class Param:
    kind: ParamKind
    #: element size in bytes for ARRAY params
    elem_size: int = 8
    #: original type spelling, for error messages
    spelling: str = ""


@dataclass(frozen=True)
class Prototype:
    name: str
    params: tuple[Param, ...]
    #: never inline this routine's body at instrumentation points (O4)
    noinline: bool = False

    @property
    def arg_count(self) -> int:
        return len(self.params)


_INT_TYPES = {
    "char": 1, "short": 2, "int": 4, "long": 8,
    "unsigned": 4, "unsigned char": 1, "unsigned short": 2,
    "unsigned int": 4, "unsigned long": 8, "long long": 8,
}

_PROTO_RE = re.compile(
    r"^\s*(?:(noinline)\s+)?([A-Za-z_]\w*)\s*\(\s*(.*?)\s*\)\s*$",
    re.DOTALL)


def parse_proto(text: str) -> Prototype:
    """Parse a prototype string into a :class:`Prototype`."""
    m = _PROTO_RE.match(text)
    if not m:
        raise ProtoError(f"malformed prototype: {text!r}")
    qualifier, name, body = m.group(1), m.group(2), m.group(3)
    params: list[Param] = []
    if body and body != "void":
        for piece in body.split(","):
            params.append(_parse_param(piece.strip(), text))
    return Prototype(name, tuple(params), noinline=qualifier == "noinline")


def _parse_param(spelling: str, ctx: str) -> Param:
    if not spelling:
        raise ProtoError(f"empty parameter in {ctx!r}")
    if spelling == "REGV":
        return Param(ParamKind.REGV, spelling=spelling)
    if spelling == "VALUE":
        return Param(ParamKind.VALUE, spelling=spelling)
    # Arrays: "T[]" or "T []"
    m = re.match(r"^(.+?)\s*\[\s*\]$", spelling)
    if m:
        base = m.group(1).strip()
        size = _INT_TYPES.get(base)
        if size is None:
            raise ProtoError(f"unsupported array element type {base!r} "
                             f"in {ctx!r}")
        return Param(ParamKind.ARRAY, elem_size=size, spelling=spelling)
    # Pointers: char * is a string; anything else passes as an integer.
    m = re.match(r"^(.+?)\s*\*+$", spelling)
    if m:
        base = m.group(1).strip()
        if base == "char":
            return Param(ParamKind.STRING, spelling=spelling)
        return Param(ParamKind.INT, spelling=spelling)
    if spelling in _INT_TYPES:
        return Param(ParamKind.INT, spelling=spelling)
    raise ProtoError(f"unsupported parameter type {spelling!r} in {ctx!r}")
