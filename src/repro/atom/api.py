"""The ATOM instrumentation API — the interface of paper Section 3.

Instrumentation routines receive an :class:`AtomContext` whose methods
carry the paper's names: ``GetFirstProc``/``GetNextProc`` walk the program,
``GetFirstBlock``/``GetNextBlock`` walk a procedure, ``GetLastInst`` and
``IsInstType`` inspect instructions, and the ``AddCall*`` primitives
annotate instrumentation points.  A tool is a Python module defining::

    def Instrument(iargc, iargv, atom):
        atom.AddCallProto("CondBranch(int, VALUE)")
        for p in atom.procs():          # or classic GetFirstProc loops
            ...

Calls added at one point are made in the order they were added, exactly as
the paper specifies.
"""

from __future__ import annotations

import struct
from enum import Enum

from ..isa import registers as R
from ..machine.costmodel import DEFAULT as DEFAULT_COSTS
from ..om.ir import Action, IRBlock, IRInst, IRProc, IRProgram
from .proto import ParamKind, Prototype, parse_proto


class AtomError(Exception):
    pass


# ---- placement constants -----------------------------------------------------

class Placement(Enum):
    INST_BEFORE = "InstBefore"
    INST_AFTER = "InstAfter"
    BLOCK_BEFORE = "BlockBefore"
    BLOCK_AFTER = "BlockAfter"
    PROC_BEFORE = "ProcBefore"
    PROC_AFTER = "ProcAfter"
    PROGRAM_BEFORE = "ProgramBefore"
    PROGRAM_AFTER = "ProgramAfter"


InstBefore = Placement.INST_BEFORE
InstAfter = Placement.INST_AFTER
BlockBefore = Placement.BLOCK_BEFORE
BlockAfter = Placement.BLOCK_AFTER
ProcBefore = Placement.PROC_BEFORE
ProcAfter = Placement.PROC_AFTER
ProgramBefore = Placement.PROGRAM_BEFORE
ProgramAfter = Placement.PROGRAM_AFTER


# ---- VALUE sentinels -----------------------------------------------------------

class _ValueSentinel:
    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: Effective address referenced by a load or store instruction.
EffAddrValue = _ValueSentinel("EffAddrValue")
#: Zero if the conditional branch will fall through, non-zero if taken.
BrCondValue = _ValueSentinel("BrCondValue")


# ---- instruction type predicates --------------------------------------------------

class InstType(Enum):
    COND_BR = "InstTypeCondBr"
    UNCOND_BR = "InstTypeUncondBr"
    LOAD = "InstTypeLoad"
    STORE = "InstTypeStore"
    MEM_REF = "InstTypeMemRef"
    CALL = "InstTypeCall"
    JUMP = "InstTypeJump"
    RET = "InstTypeRet"
    SYSCALL = "InstTypeSyscall"


InstTypeCondBr = InstType.COND_BR
InstTypeUncondBr = InstType.UNCOND_BR
InstTypeLoad = InstType.LOAD
InstTypeStore = InstType.STORE
InstTypeMemRef = InstType.MEM_REF
InstTypeCall = InstType.CALL
InstTypeJump = InstType.JUMP
InstTypeRet = InstType.RET
InstTypeSyscall = InstType.SYSCALL

_TYPE_TESTS = {
    InstType.COND_BR: lambda i: i.is_cond_branch(),
    InstType.UNCOND_BR: lambda i: i.is_uncond_branch(),
    InstType.LOAD: lambda i: i.is_load(),
    InstType.STORE: lambda i: i.is_store(),
    InstType.MEM_REF: lambda i: i.is_memory_ref(),
    InstType.CALL: lambda i: i.is_call(),
    InstType.JUMP: lambda i: i.is_jump(),
    InstType.RET: lambda i: i.is_ret(),
    InstType.SYSCALL: lambda i: i.is_syscall(),
}


class AtomContext:
    """The instrumentation-time view of one application program."""

    def __init__(self, program: IRProgram):
        self._program = program
        self.protos: dict[str, Prototype] = {}

    # ---- program traversal (paper names) ---------------------------------

    def GetFirstProc(self) -> IRProc | None:
        return self._program.procs[0] if self._program.procs else None

    def GetNextProc(self, proc: IRProc) -> IRProc | None:
        procs = self._program.procs
        idx = procs.index(proc)
        return procs[idx + 1] if idx + 1 < len(procs) else None

    def GetNamedProc(self, name: str) -> IRProc | None:
        return self._program.find_proc(name)

    def GetFirstBlock(self, proc: IRProc) -> IRBlock | None:
        return proc.blocks[0] if proc.blocks else None

    def GetNextBlock(self, block: IRBlock) -> IRBlock | None:
        blocks = block.proc.blocks
        idx = blocks.index(block)
        return blocks[idx + 1] if idx + 1 < len(blocks) else None

    def GetFirstInst(self, block: IRBlock) -> IRInst | None:
        return block.insts[0] if block.insts else None

    def GetLastInst(self, block: IRBlock) -> IRInst | None:
        return block.insts[-1] if block.insts else None

    def GetNextInst(self, inst: IRInst) -> IRInst | None:
        # Linear within the block.
        for block in self._program.blocks():
            if inst in block.insts:
                idx = block.insts.index(inst)
                if idx + 1 < len(block.insts):
                    return block.insts[idx + 1]
                return None
        return None

    # Pythonic iterators (conveniences beyond the paper's C API).

    def procs(self):
        yield from self._program.procs

    def blocks(self, proc: IRProc | None = None):
        if proc is not None:
            yield from proc.blocks
        else:
            yield from self._program.blocks()

    def insts(self, scope=None):
        if scope is None:
            yield from self._program.instructions()
        elif isinstance(scope, IRProc):
            yield from scope.instructions()
        else:
            yield from scope.insts

    # ---- queries ------------------------------------------------------------

    def IsInstType(self, inst: IRInst, itype: InstType) -> bool:
        return _TYPE_TESTS[itype](inst.inst)

    def InstPC(self, inst: IRInst) -> int:
        """The instruction's *original* program counter.

        Analysis routines always see uninstrumented text addresses: the
        map from new to original addresses is static (paper Section 4).
        """
        if inst.orig_pc is None:
            raise AtomError("instruction has no original address")
        return inst.orig_pc

    def InstOpcode(self, inst: IRInst) -> str:
        return inst.inst.mnemonic

    def InstCycles(self, inst: IRInst) -> int:
        """Static cycle cost under the machine's cost model (pipe tool)."""
        return DEFAULT_COSTS.cost(inst.inst.op)

    def InstMemAccessSize(self, inst: IRInst) -> int:
        if not inst.inst.is_memory_ref():
            raise AtomError("InstMemAccessSize on a non-memory instruction")
        return inst.inst.op.access_size

    def InstMemBaseReg(self, inst: IRInst) -> int:
        if not inst.inst.is_memory_ref():
            raise AtomError("InstMemBaseReg on a non-memory instruction")
        return inst.inst.rb

    def InstMemDisp(self, inst: IRInst) -> int:
        if not inst.inst.is_memory_ref():
            raise AtomError("InstMemDisp on a non-memory instruction")
        return inst.inst.disp

    def InstBranchTarget(self, inst: IRInst) -> int | None:
        """Original PC of a direct branch target, if statically known."""
        if inst.target is None:
            return None
        kind, payload = inst.target
        if kind == "block":
            return payload.orig_pc
        proc = self._program.find_proc(payload)
        if proc is not None:
            return proc.orig_addr
        ir = self._program.text_labels.get(payload)
        return ir.orig_pc if ir is not None else None

    def InstRegDefs(self, inst: IRInst) -> frozenset[int]:
        return inst.inst.defs()

    def InstRegUses(self, inst: IRInst) -> frozenset[int]:
        return inst.inst.uses()

    # Raw register fields.  ``InstRegDefs``/``InstRegUses`` return sets and
    # therefore cannot distinguish roles when fields alias (e.g. the stored
    # register vs. the base register of ``stq r5, 0(r5)``).  Tools that
    # need role-precise operands — the taint tool wants *exactly* the
    # stored register — read the encoding fields directly.  ``ZERO`` (31)
    # is returned verbatim for unused fields.

    def InstRA(self, inst: IRInst) -> int:
        return inst.inst.ra

    def InstRB(self, inst: IRInst) -> int:
        return inst.inst.rb

    def InstRC(self, inst: IRInst) -> int:
        return inst.inst.rc

    def ProcName(self, proc: IRProc) -> str:
        return proc.name

    def ProcPC(self, proc: IRProc) -> int:
        return proc.orig_addr

    def BlockPC(self, block: IRBlock) -> int:
        pc = block.orig_pc
        if pc is None:
            raise AtomError("block has no original address")
        return pc

    def GetBlockInstCount(self, block: IRBlock) -> int:
        return len(block.insts)

    def GetProcInstCount(self, proc: IRProc) -> int:
        return proc.inst_count()

    def GetProgramInstCount(self) -> int:
        return self._program.inst_count()

    # ---- AddCall primitives ------------------------------------------------------

    def AddCallProto(self, text: str) -> None:
        proto = parse_proto(text)
        existing = self.protos.get(proto.name)
        if existing is not None and existing != proto:
            raise AtomError(f"conflicting prototype for {proto.name!r}")
        self.protos[proto.name] = proto

    def AddCallInst(self, inst: IRInst, where: Placement, name: str,
                    *args) -> None:
        if where not in (InstBefore, InstAfter):
            raise AtomError("AddCallInst takes InstBefore or InstAfter")
        if where is InstAfter and inst.inst.is_control_transfer():
            raise AtomError(
                "InstAfter on a control-transfer instruction is not "
                "supported (the call would only run on fall-through)")
        action = self._make_action(name, args, inst=inst)
        (inst.before if where is InstBefore else inst.after).append(action)

    def AddCallBlock(self, block: IRBlock, where: Placement, name: str,
                     *args) -> None:
        if where not in (BlockBefore, BlockAfter):
            raise AtomError("AddCallBlock takes BlockBefore or BlockAfter")
        action = self._make_action(name, args)
        (block.before if where is BlockBefore else block.after).append(
            action)

    def AddCallProc(self, proc: IRProc, where: Placement, name: str,
                    *args) -> None:
        if where not in (ProcBefore, ProcAfter):
            raise AtomError("AddCallProc takes ProcBefore or ProcAfter")
        action = self._make_action(name, args)
        (proc.before if where is ProcBefore else proc.after).append(action)

    def AddCallProgram(self, where: Placement, name: str, *args) -> None:
        if where not in (ProgramBefore, ProgramAfter):
            raise AtomError(
                "AddCallProgram takes ProgramBefore or ProgramAfter")
        action = self._make_action(name, args)
        target = self._program.before if where is ProgramBefore \
            else self._program.after
        target.append(action)

    def AddCallEdge(self, *args) -> None:
        # Paper, Section 4: "Currently, adding calls to edges is not
        # implemented."
        raise NotImplementedError(
            "adding calls to edges is not implemented")

    # ---- argument validation/lowering ----------------------------------------------

    def _make_action(self, name: str, args: tuple,
                     inst: IRInst | None = None) -> Action:
        proto = self.protos.get(name)
        if proto is None:
            raise AtomError(f"no prototype for analysis procedure {name!r}"
                            " (call AddCallProto first)")
        if len(args) != proto.arg_count:
            raise AtomError(
                f"{name} expects {proto.arg_count} argument(s), "
                f"got {len(args)}")
        lowered = []
        for i, (param, arg) in enumerate(zip(proto.params, args)):
            lowered.append(self._lower_arg(name, i, param, arg, inst))
        return Action(proc_name=name, args=tuple(lowered))

    def _lower_arg(self, name: str, i: int, param, arg, inst):
        kind = param.kind
        if kind is ParamKind.INT:
            if isinstance(arg, bool) or not isinstance(arg, int):
                raise AtomError(f"{name} argument {i + 1}: expected an "
                                f"integer, got {arg!r}")
            return ("const", arg)
        if kind is ParamKind.REGV:
            if not isinstance(arg, int) or not 0 <= arg < R.NUM_REGS:
                raise AtomError(f"{name} argument {i + 1}: REGV needs a "
                                f"register number, got {arg!r}")
            return ("regv", arg)
        if kind is ParamKind.VALUE:
            if arg is EffAddrValue:
                if inst is None or not inst.inst.is_memory_ref():
                    raise AtomError(
                        f"{name} argument {i + 1}: EffAddrValue is only "
                        f"valid on load/store instructions")
                return ("effaddr",)
            if arg is BrCondValue:
                if inst is None or not inst.inst.is_cond_branch():
                    raise AtomError(
                        f"{name} argument {i + 1}: BrCondValue is only "
                        f"valid on conditional branch instructions")
                return ("brcond",)
            raise AtomError(f"{name} argument {i + 1}: VALUE must be "
                            f"EffAddrValue or BrCondValue")
        if kind is ParamKind.STRING:
            if isinstance(arg, str):
                data = arg.encode() + b"\x00"
            elif isinstance(arg, bytes):
                data = arg + b"\x00"
            else:
                raise AtomError(f"{name} argument {i + 1}: expected a "
                                f"string, got {arg!r}")
            return ("data", data, 1)
        if kind is ParamKind.ARRAY:
            if isinstance(arg, (bytes, bytearray)):
                return ("data", bytes(arg), param.elem_size)
            if not isinstance(arg, (list, tuple)):
                raise AtomError(f"{name} argument {i + 1}: expected a "
                                f"list, got {arg!r}")
            fmt = {1: "b", 2: "h", 4: "i", 8: "q"}[param.elem_size]
            mask = (1 << (8 * param.elem_size)) - 1
            half = 1 << (8 * param.elem_size - 1)
            out = bytearray()
            for v in arg:
                v &= mask
                if v >= half:
                    v -= mask + 1
                out += struct.pack("<" + fmt, v)
            return ("data", bytes(out), param.elem_size)
        raise AssertionError(kind)  # pragma: no cover
