"""ATOM: a system for building customized program analysis tools.

The public surface mirrors the paper: instrumentation routines receive an
:class:`AtomContext` with the ``GetFirstProc``/``AddCall*`` primitives;
:func:`instrument_executable` (or the ``atom`` command line) combines the
application, the instrumentation routines, and the analysis routines into
one instrumented executable whose analysis output is produced as a side
effect of a normal run.
"""

from .api import (AtomContext, AtomError, BlockAfter, BlockBefore,
                  BrCondValue, EffAddrValue, InstAfter, InstBefore,
                  InstType, InstTypeCall, InstTypeCondBr, InstTypeJump,
                  InstTypeLoad, InstTypeMemRef, InstTypeRet,
                  InstTypeStore, InstTypeSyscall, InstTypeUncondBr,
                  Placement, ProcAfter, ProcBefore, ProgramAfter,
                  ProgramBefore)
from .instrument import (InstrumentResult, InstrumentStats, LayoutError,
                         instrument_executable)
from .proto import ProtoError, parse_proto
from .saves import OptLevel

__all__ = [
    "AtomContext", "AtomError", "instrument_executable",
    "InstrumentResult", "InstrumentStats", "LayoutError", "OptLevel",
    "ProtoError", "parse_proto",
    "InstBefore", "InstAfter", "BlockBefore", "BlockAfter", "ProcBefore",
    "ProcAfter", "ProgramBefore", "ProgramAfter", "Placement",
    "EffAddrValue", "BrCondValue",
    "InstType", "InstTypeCondBr", "InstTypeUncondBr", "InstTypeLoad",
    "InstTypeStore", "InstTypeMemRef", "InstTypeCall", "InstTypeJump",
    "InstTypeRet", "InstTypeSyscall",
]
