"""Lowering instrumentation actions into inline code snippets.

For each instrumentation point ATOM generates (paper Section 4):

1. ``lda sp, -S(sp)`` — allocate stack space;
2. stores of the registers the snippet clobbers (always the return-address
   register, plus the argument registers it overwrites and any scratch);
3. argument materialization, priced exactly as the paper describes: a
   16-bit constant in one instruction, a 32-bit constant in two, a 64-bit
   program counter in three; register contents in one (``REGV``);
   ``EffAddrValue`` as a single ``lda``; ``BrCondValue`` as the branch
   condition re-evaluated into the argument register;
4. a pc-relative ``bsr`` when the callee is within range, otherwise the
   procedure value is loaded and a ``jsr`` used;
5. restores and ``lda sp, +S(sp)``.

Reads of application registers the snippet has already clobbered come from
their save slots; reads of ``sp`` are rewritten ``sp + S`` so analysis
routines always observe the *original* value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import const, opcodes, registers as R
from ..isa.instruction import Instruction
from ..obs import TRACE
from ..objfile.relocs import Relocation, RelocType
from ..objfile.sections import TEXT
from ..om.ir import Action, IRInst
from ..om.opt import specialize_point
from .api import AtomError
from .saves import OptLevel, SavePlans

#: Symbol the lowered code uses to reach instrumentation-time data
#: (strings and arrays passed as arguments); defined by the layout step.
ATOM_DATA_SYMBOL = "atom$data"
#: Prefix partitioning analysis symbols from application symbols.
ANAL_PREFIX = "anal$"
#: Absolute symbol carrying the analysis unit's global-pointer value;
#: gp rematerialization inside inlined bodies (O4) is re-pointed at it so
#: the clone computes the same gp the called routine would have.
ANAL_GP_SYMBOL = ANAL_PREFIX + "_gp"

_BRCOND_PLANS = {
    # branch mnemonic -> (op, ra_is_zero, post_xor_1)
    "beq": (opcodes.CMPEQ, False, False),    # rt == 0
    "bne": (opcodes.CMPULT, True, False),    # 0 <u rt
    "blt": (opcodes.CMPLT, False, False),    # rt < 0
    "ble": (opcodes.CMPLE, False, False),    # rt <= 0
    "bgt": (opcodes.CMPLT, True, False),     # 0 < rt
    "bge": (opcodes.CMPLE, True, False),     # 0 <= rt
    "blbs": (opcodes.AND, False, False),     # rt & 1
    "blbc": (opcodes.AND, False, True),      # (rt & 1) ^ 1
}


@dataclass
class AtomData:
    """Allocator for instrumentation-time data (strings, arrays)."""

    chunks: list[bytes] = field(default_factory=list)
    size: int = 0
    _dedupe: dict[bytes, int] = field(default_factory=dict)

    def place(self, data: bytes, align: int = 8) -> int:
        cached = self._dedupe.get(data)
        if cached is not None:
            return cached
        pad = (-self.size) % align
        if pad:
            self.chunks.append(b"\x00" * pad)
            self.size += pad
        offset = self.size
        self.chunks.append(data)
        self.size += len(data)
        self._dedupe[data] = offset
        return offset

    def blob(self) -> bytes:
        return b"".join(self.chunks)


@dataclass
class Lowerer:
    """Generates one snippet per instrumentation point."""

    plans: SavePlans
    data: AtomData
    #: liveness per application proc (O3 only): name -> Liveness
    liveness: dict = field(default_factory=dict)
    #: use bsr (True) or ldah/lda+jsr for direct analysis calls
    analysis_in_bsr_range: bool = False
    #: instrumentation points lowered so far (save-bracket site ids)
    _sites: int = 0
    #: analysis calls replaced by spliced bodies (O4)
    inlined_calls: int = 0

    # ---- entry point -------------------------------------------------------

    def snippet(self, actions: list[Action], app_inst: IRInst | None,
                live: frozenset[int] | None = None) -> list[IRInst]:
        """Lower the ordered action list of one point into instructions.

        ``app_inst`` is the application instruction the point refers to
        (for EffAddrValue/BrCondValue); ``live`` restricts saves at O3.
        """
        if not actions:
            return []
        level = self.plans.level
        arg_regs_used = 0
        stack_args = 0
        inline_extra: set[int] = set()
        uses_jsr = False
        needs_call = False
        for action in actions:
            plan = self.plans.plan(action.proc_name)
            arg_regs_used = max(arg_regs_used, min(plan.arg_count, 6))
            stack_args = max(stack_args, max(0, plan.arg_count - 6))
            if plan.mode != "inlined":
                needs_call = True
            if plan.mode in ("inframe", "inline") \
                    and not self.analysis_in_bsr_range:
                uses_jsr = True
            if plan.mode in ("inline", "inlined"):
                inline_extra |= set(plan.saves)

        # A fully inlined point performs no call: ra stays untouched.
        saved: list[int] = [R.RA] if needs_call else []
        saved += [R.ARG_REGS[i] for i in range(arg_regs_used)]
        if stack_args:
            saved.append(R.AT)
        if uses_jsr:
            saved.append(R.PV)
        for reg in sorted(inline_extra):
            if reg not in saved:
                saved.append(reg)
        if live is not None:
            # O3: skip saving registers that are dead in the application —
            # except registers the snippet itself must *read* the original
            # value of (REGV/EffAddrValue/BrCondValue sources), which need
            # their slot regardless of liveness.
            sources: set[int] = set()
            for action in actions:
                for arg in action.args:
                    if arg[0] == "regv":
                        sources.add(arg[1])
                    elif arg[0] == "effaddr":
                        sources.add(app_inst.inst.rb)
                    elif arg[0] == "brcond":
                        sources.add(app_inst.inst.ra)
            # gp gets no special treatment: liveness models it exactly
            # (live at rets and before calls, killed by ldgp), so a point
            # where gp is dead may clobber it freely — the application
            # rematerializes before any use.
            always = {R.SP}
            saved = [r for r in saved
                     if r in live or r in always or r in sources]
        slot = {reg: 8 * (stack_args + i) for i, reg in enumerate(saved)}
        frame = 8 * stack_args + 8 * len(saved)
        frame = (frame + 15) & ~15

        site = self._sites
        self._sites += 1
        # Bracket identity for the cross-point coalescer.  The save set
        # is keyed as (register, slot displacement) pairs: point
        # specialization may shrink a bracket without re-compacting the
        # surviving slots, so the register list alone does not pin down
        # the layout — only identical (reg, slot) layouts are
        # interchangeable.
        key = (frame, stack_args,
               tuple((reg, slot[reg]) for reg in saved))

        insts: list[IRInst] = []
        emit = insts.append
        if frame:
            pro = _lda(R.SP, R.SP, -frame)
            pro.snip = (site, "pro", key)
            emit(pro)
            for reg in saved:
                st = _mem(opcodes.STQ, reg, R.SP, slot[reg])
                st.snip = (site, "pro", key)
                emit(st)

        for action in actions:
            plan = self.plans.plan(action.proc_name)
            self._emit_args(emit, action, app_inst, saved, slot, frame)
            if plan.mode == "inlined":
                self._splice_inline(emit, plan)
            elif plan.mode == "wrapper":
                emit(IRInst(Instruction(opcodes.BSR, ra=R.RA),
                            target=("symbol", plan.wrapper_symbol)))
            else:
                self._emit_direct_call(emit, plan)

        if frame:
            for reg in reversed(saved):
                ld = _mem(opcodes.LDQ, reg, R.SP, slot[reg])
                ld.snip = (site, "epi", key)
                emit(ld)
            epi = _lda(R.SP, R.SP, frame)
            epi.snip = (site, "epi", key)
            emit(epi)
        if level >= OptLevel.O4 and not needs_call and live is not None:
            # Fully inlined and straight-line: fold instrumentation-time
            # constants into the body and re-derive the save bracket from
            # what actually remains.
            insts = specialize_point(insts, live)
        if TRACE.enabled:
            TRACE.count("lowering.snippets")
            TRACE.count("lowering.snippet_insts", len(insts))
            TRACE.count("lowering.saved_regs", len(saved))
        return insts

    # ---- pieces --------------------------------------------------------------

    def _emit_direct_call(self, emit, plan) -> None:
        target = ANAL_PREFIX + plan.name
        if self.analysis_in_bsr_range:
            emit(IRInst(Instruction(opcodes.BSR, ra=R.RA),
                        target=("symbol", target)))
            return
        hi = IRInst(Instruction(opcodes.LDAH, ra=R.PV, rb=R.ZERO))
        hi.relocs.append(Relocation(TEXT, 0, RelocType.HI16, target, 0))
        lo = IRInst(Instruction(opcodes.LDA, ra=R.PV, rb=R.PV))
        lo.relocs.append(Relocation(TEXT, 0, RelocType.LO16, target, 0))
        emit(hi)
        emit(lo)
        emit(IRInst(Instruction(opcodes.JSR, ra=R.RA, rb=R.PV)))

    def _splice_inline(self, emit, plan) -> None:
        """Splice the pre-optimized body template of an inlined routine.

        Each template instruction is cloned (codegen keys addresses by
        instruction identity, so templates must never be shared between
        points).  Relocation conversion already happened at plan time
        (:func:`repro.atom.saves._try_inline`): templates only carry
        HI16/LO16 forms, which resolve against the application plus the
        injected ``anal$`` landmark symbols.
        """
        for tmpl in plan.body:
            for rel in tmpl.relocs:
                if rel.type not in (RelocType.HI16, RelocType.LO16):
                    # pragma: no cover - plan-time conversion is total
                    raise AtomError(
                        f"relocation {rel.type} survived template "
                        f"conversion of {plan.name!r}")
            emit(IRInst(inst=tmpl.inst.copy(), relocs=list(tmpl.relocs),
                        origin=plan.name))
        self.inlined_calls += 1
        if TRACE.enabled:
            TRACE.count("lowering.inlined_calls")

    def _emit_args(self, emit, action: Action, app_inst: IRInst | None,
                   saved: list[int], slot: dict[int, int],
                   frame: int) -> None:
        for j, arg in enumerate(action.args):
            if j < 6:
                dest = R.ARG_REGS[j]
                self._one_arg(emit, arg, dest, app_inst, saved, slot,
                              frame)
            else:
                self._one_arg(emit, arg, R.AT, app_inst, saved, slot,
                              frame)
                emit(_mem(opcodes.STQ, R.AT, R.SP, 8 * (j - 6)))

    def _one_arg(self, emit, arg: tuple, dest: int,
                 app_inst: IRInst | None, saved: list[int],
                 slot: dict[int, int], frame: int) -> None:
        kind = arg[0]
        if kind == "const":
            for inst in const.materialize(arg[1], dest):
                emit(IRInst(inst))
            return
        if kind == "regv":
            self._read_app_reg(emit, arg[1], dest, saved, slot, frame)
            return
        if kind == "effaddr":
            mem = app_inst.inst
            base, disp = mem.rb, mem.disp
            if base == R.SP:
                emit(_lda(dest, R.SP, disp + frame))
            elif base in slot:
                emit(_mem(opcodes.LDQ, dest, R.SP, slot[base]))
                emit(_lda(dest, dest, disp))
            else:
                emit(_lda(dest, base, disp))
            return
        if kind == "brcond":
            br = app_inst.inst
            plan = _BRCOND_PLANS.get(br.mnemonic)
            if plan is None:
                raise AtomError(f"BrCondValue on {br.mnemonic}")
            op, zero_first, post_xor = plan
            test_reg = br.ra
            src = self._app_reg_source(emit, test_reg, dest, saved, slot,
                                       frame)
            if op is opcodes.AND:
                emit(IRInst(Instruction(op, ra=src, lit=1, is_lit=True,
                                        rc=dest)))
            elif zero_first:
                emit(IRInst(Instruction(op, ra=R.ZERO, rb=src, rc=dest)))
            else:
                emit(IRInst(Instruction(op, ra=src, lit=0, is_lit=True,
                                        rc=dest)))
            if post_xor:
                emit(IRInst(Instruction(opcodes.XOR, ra=dest, lit=1,
                                        is_lit=True, rc=dest)))
            return
        if kind == "data":
            offset = self.data.place(arg[1], align=max(arg[2], 8)
                                     if len(arg) > 2 else 8)
            hi = IRInst(Instruction(opcodes.LDAH, ra=dest, rb=R.ZERO))
            hi.relocs.append(Relocation(TEXT, 0, RelocType.HI16,
                                        ATOM_DATA_SYMBOL, offset))
            lo = IRInst(Instruction(opcodes.LDA, ra=dest, rb=dest))
            lo.relocs.append(Relocation(TEXT, 0, RelocType.LO16,
                                        ATOM_DATA_SYMBOL, offset))
            emit(hi)
            emit(lo)
            return
        raise AssertionError(kind)  # pragma: no cover

    def _read_app_reg(self, emit, reg: int, dest: int, saved, slot,
                      frame) -> None:
        """dest := the application's value of ``reg`` at this point."""
        if reg == R.SP:
            emit(_lda(dest, R.SP, frame))
        elif reg in slot:
            emit(_mem(opcodes.LDQ, dest, R.SP, slot[reg]))
        elif reg == R.ZERO:
            emit(IRInst(Instruction(opcodes.BIS, ra=R.ZERO, rb=R.ZERO,
                                    rc=dest)))
        else:
            emit(IRInst(Instruction(opcodes.BIS, ra=reg, rb=R.ZERO,
                                    rc=dest)))

    def _app_reg_source(self, emit, reg: int, scratch: int, saved, slot,
                        frame) -> int:
        """Return a register currently holding the app's value of ``reg``,
        loading into ``scratch`` when the original was clobbered."""
        if reg == R.SP:
            emit(_lda(scratch, R.SP, frame))
            return scratch
        if reg in slot:
            emit(_mem(opcodes.LDQ, scratch, R.SP, slot[reg]))
            return scratch
        return reg


def _lda(ra: int, rb: int, disp: int) -> IRInst:
    return IRInst(Instruction(opcodes.LDA, ra=ra, rb=rb, disp=disp))


def _mem(op, ra: int, rb: int, disp: int) -> IRInst:
    return IRInst(Instruction(op, ra=ra, rb=rb, disp=disp))
