"""``atom``: the command-line driver.

Mirrors the paper's usage::

    atom prog inst.py anal.mlc -o prog.atom

where ``prog`` is a linked WOF executable, ``inst.py`` a Python module
defining ``Instrument(iargc, iargv, atom)``, and ``anal.mlc`` the analysis
routines in MLC (one or more files, or a prebuilt ``.wof`` analysis unit).
Extra arguments after ``--`` are passed to the instrumentation routine as
``iargv[1:]``.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys

from ..mlc import MlcError, build_analysis_unit
from ..objfile.module import Module
from .api import AtomError
from .instrument import instrument_executable
from .saves import OptLevel


def load_instrumentation(path: str):
    """Import a Python instrumentation module and return its Instrument."""
    spec = importlib.util.spec_from_file_location("atom_inst", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    fn = getattr(module, "Instrument", None)
    if fn is None:
        raise AtomError(f"{path}: no Instrument(iargc, iargv, atom) "
                        f"procedure")
    return fn


def build_analysis(paths: list[str]) -> Module:
    """Compile/assemble analysis inputs into a linked analysis unit."""
    if len(paths) == 1 and paths[0].endswith(".wof"):
        return Module.load(paths[0])
    sources = []
    for path in paths:
        with open(path) as f:
            sources.append(f.read())
    return build_analysis_unit(sources)


def main(argv: list[str] | None = None) -> int:
    args_in = list(sys.argv[1:] if argv is None else argv)
    tool_args: tuple[str, ...] = ()
    if "--" in args_in:
        split = args_in.index("--")
        tool_args = tuple(args_in[split + 1:])
        args_in = args_in[:split]

    ap = argparse.ArgumentParser(
        prog="atom",
        description="build a customized program analysis tool and apply it")
    ap.add_argument("program", help="linked application executable (WOF)")
    ap.add_argument("instrumentation", help="Python instrumentation module")
    ap.add_argument("analysis", nargs="+",
                    help="analysis routine sources (.mlc) or unit (.wof)")
    ap.add_argument("-o", "--output", required=True)
    ap.add_argument("-O", "--opt", type=int, choices=[0, 1, 2, 3, 4],
                    default=1, help="save-strategy optimization level "
                    "(4 = inline analysis bodies + coalesce saves)")
    ap.add_argument("--heap", choices=["linked", "partitioned"],
                    default="linked")
    ap.add_argument("--heap-offset", type=lambda s: int(s, 0),
                    default=0x10_0000,
                    help="analysis heap offset (partitioned mode)")
    opts = ap.parse_args(args_in)

    try:
        app = Module.load(opts.program)
        instrument_fn = load_instrumentation(opts.instrumentation)
        anal = build_analysis(opts.analysis)
        result = instrument_executable(
            app, instrument_fn, anal, opt=OptLevel(opts.opt),
            heap_mode=opts.heap, heap_offset=opts.heap_offset,
            tool_args=tool_args)
    except (AtomError, MlcError, OSError) as exc:
        print(f"atom: {exc}", file=sys.stderr)
        return 1
    result.module.save(opts.output)
    stats = result.stats
    line = (f"atom: {stats.points} points, {stats.calls_added} calls, "
            f"{stats.wrappers} wrappers, "
            f"{stats.snippet_insts} instructions added")
    if stats.inlined_calls:
        line += f", {stats.inlined_calls} calls inlined"
    print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
