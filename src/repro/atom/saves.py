"""Register-save strategies: ATOM's procedure-call overhead machinery.

The application may not follow calling conventions (hand-crafted assembly,
interprocedural optimization), so every register an analysis call might
modify must be preserved around it (paper Section 4).  Four strategies are
provided as optimization levels:

* **O0** — naive: wrappers save every caller-saved register (ablation
  baseline, not in the paper).
* **O1** — the paper's shipped default: wrappers save only the registers
  the analysis routine *may modify* (interprocedural data-flow summary),
  after register renaming has shrunk the analysis unit's caller-save
  footprint; when none of an analysis routine's call sites sit in a loop,
  saves of registers used only by its callees are *delayed* into internal
  wrappers around those callees, so the error path pays and the hot path
  does not.
* **O2** — the paper's "higher optimization option": no wrapper; the
  saves/restores are added to the analysis routine itself by bumping its
  stack frame and fixing its stack references, and the application calls
  it directly (faster, but hampers source-level debugging).
* **O3** — the paper's planned refinement: live-register analysis of the
  application; only registers live at the instrumentation point are saved,
  inline, with direct calls.
* **O4** — beyond the paper: small, call-free analysis routines are not
  called at all — their (peepholed) bodies are spliced directly into the
  snippet, the save set shrinks to the registers the inlined sequence
  actually clobbers intersected with the application's live set, and a
  cross-point pass (:func:`repro.om.opt.coalesce_snippets`) merges
  adjacent save/restore brackets.  Routines the side-effect summary
  (:func:`repro.om.dataflow.inline_summary`) rejects fall back to O3
  treatment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..isa import opcodes, registers as R
from ..isa.instruction import Instruction
from ..om import dataflow
from ..om.ir import IRBlock, IRInst, IRProc, IRProgram

#: Registers eligible for saving around analysis calls.  gp joins the
#: caller-saved set because each link unit has its own global pointer.
SAVE_CANDIDATES = frozenset(R.CALLER_SAVED | {R.GP})

#: Stable order for save/restore sequences (deterministic output).
_SAVE_ORDER = sorted(SAVE_CANDIDATES)


class OptLevel(enum.IntEnum):
    O0 = 0
    O1 = 1
    O2 = 2
    O3 = 3
    O4 = 4


@dataclass
class ProcSavePlan:
    """How calls to one analysis procedure preserve application state."""

    name: str                      # analysis procedure name
    arg_count: int
    #: "wrapper" (O0/O1), "inframe" (O2), "inline" (O3),
    #: "inlined" (O4: body spliced at the point, no call at all)
    mode: str = "wrapper"
    #: registers the wrapper (or inline sequence) must save
    saves: tuple[int, ...] = ()
    wrapper_symbol: str = ""
    #: delayed-save bookkeeping (which callees were redirected)
    delayed: bool = False
    #: for mode "inlined": the peepholed body template (sans ret) that the
    #: lowerer clones at every instrumentation point
    body: tuple = ()


@dataclass
class SavePlans:
    level: OptLevel
    plans: dict[str, ProcSavePlan] = field(default_factory=dict)

    def plan(self, name: str) -> ProcSavePlan:
        return self.plans[name]


def compute_plans(anal_ir: IRProgram, targets: dict[str, int],
                  level: OptLevel, *,
                  no_inline: frozenset[str] = frozenset()) -> SavePlans:
    """Build a save plan for every instrumented analysis procedure.

    ``targets`` maps analysis procedure name -> declared argument count.
    Mutates ``anal_ir`` for the delayed-save redirection (O1+) and the
    in-frame transformation (O2).  ``no_inline`` lists routines whose
    prototype carries the ``noinline`` qualifier: at O4 they keep O3
    treatment even when the summary says they could be inlined.
    """
    if level >= OptLevel.O1:
        for proc in anal_ir.procs:
            dataflow.rename_registers(proc)
    maymod = dataflow.modified_registers(anal_ir)
    direct = dataflow.direct_writes(anal_ir)

    plans = SavePlans(level=level)
    iw_needed: set[str] = set()

    for name, argc in sorted(targets.items()):
        proc = anal_ir.find_proc(name)
        if proc is None:
            raise KeyError(f"analysis routine {name!r} not found in the "
                           f"analysis unit")
        arg_regs = frozenset(R.ARG_REGS[:min(argc, 6)])
        plan = ProcSavePlan(name=name, arg_count=argc,
                            wrapper_symbol=f"__atomwrap${name}")
        if level == OptLevel.O0:
            saves = SAVE_CANDIDATES - arg_regs - {R.RA}
        elif _delayed_applicable(anal_ir, proc, level):
            plan.delayed = True
            saves = ((direct[name] | {R.V0, R.PV})
                     & SAVE_CANDIDATES) - arg_regs - {R.RA}
            iw_needed |= _redirect_calls(anal_ir, proc)
        else:
            saves = (maymod[name] & SAVE_CANDIDATES) - arg_regs - {R.RA}
        plan.saves = tuple(r for r in _SAVE_ORDER if r in saves)
        if level == OptLevel.O2:
            plan.mode = "inframe" if _inframe_applicable(proc) else "wrapper"
        elif level >= OptLevel.O3:
            plan.mode = "inline"
            if level >= OptLevel.O4 and name not in no_inline:
                _try_inline(plan, proc, arg_regs, anal_ir.module)
        plans.plans[name] = plan

    # Internal wrappers for delayed saves.
    for callee in sorted(iw_needed):
        saves = ((maymod.get(callee, dataflow.ALL_CALLER_SAVED)
                  | {R.PV}) & SAVE_CANDIDATES) - {R.V0, R.RA}
        _append_internal_wrapper(anal_ir, callee,
                                 tuple(r for r in _SAVE_ORDER
                                       if r in saves))

    # In-frame transformation happens after renaming and redirection.
    if level == OptLevel.O2:
        for name, plan in plans.plans.items():
            if plan.mode == "inframe":
                _transform_in_frame(anal_ir.find_proc(name), plan.saves)
    return plans


def _try_inline(plan: ProcSavePlan, proc: IRProc,
                arg_regs: frozenset[int], module) -> None:
    """Upgrade ``plan`` to mode "inlined" when the routine qualifies.

    Clones the body (sans ret) and optimizes the clone once here — every
    instrumentation point then splices an identical, already-optimized
    template:

    * literal-table loads of in-window analysis data collapse to direct
      gp-relative ``lda`` (:func:`repro.om.opt.convert_got_to_gprel`),
      and address arithmetic folds into memory displacements
      (:func:`repro.om.opt.fuse_lda_bases`);
    * gp rematerialization (``ldgp``) is re-pointed at the absolute
      ``anal$_gp`` landmark so the clone computes the analysis unit's gp
      inside application text;
    * a copy-propagation/DCE peephole cleans what the above strands —
      including the ``ldgp`` pair itself when no access still needs gp.

    The save set is then recomputed from what the template actually
    clobbers.  Argument registers are excluded: the lowerer's argument
    materialization has already versioned them at the point (they are
    saved by the bracket when the *application* needs them live, exactly
    as for O3 calls)."""
    from ..objfile.relocs import Relocation, RelocType
    from ..objfile.sections import TEXT
    from ..om.opt import (convert_got_to_gprel, fuse_lda_bases,
                          peephole_straightline)
    from .lowering import ANAL_GP_SYMBOL

    clobbers = dataflow.inline_summary(proc)
    if clobbers is None:
        return
    body = [IRInst(inst=ir.inst.copy(), relocs=list(ir.relocs))
            for ir in proc.blocks[0].insts[:-1]]
    convert_got_to_gprel(body, module)
    for ir in body:
        ir.relocs = [
            Relocation(TEXT, rel.offset, RelocType.HI16
                       if rel.type is RelocType.GPHI16 else RelocType.LO16,
                       ANAL_GP_SYMBOL, rel.addend)
            if rel.type in (RelocType.GPHI16, RelocType.GPLO16) else rel
            for rel in ir.relocs]
    fuse_lda_bases(body)
    body, _removed = peephole_straightline(body)
    clobbers = frozenset(
        d for ir in body for d in ir.inst.defs()) - {R.ZERO}
    plan.mode = "inlined"
    plan.body = tuple(body)
    saves = (clobbers & SAVE_CANDIDATES) - arg_regs - {R.RA}
    plan.saves = tuple(r for r in _SAVE_ORDER if r in saves)


def _delayed_applicable(anal_ir: IRProgram, proc: IRProc,
                        level: OptLevel) -> bool:
    if level < OptLevel.O1 or level > OptLevel.O2:
        return False
    has_direct_call = False
    for ir in proc.instructions():
        if not ir.inst.is_call():
            continue
        if ir.target is None or ir.target[0] != "symbol" \
                or anal_ir.find_proc(ir.target[1]) is None:
            return False      # indirect or external call: cannot delay
        has_direct_call = True
    if not has_direct_call:
        return False          # nothing to delay
    return not dataflow.call_sites_in_loops(proc)


def _redirect_calls(anal_ir: IRProgram, proc: IRProc) -> set[str]:
    """Route every direct call in ``proc`` through an internal wrapper."""
    redirected: set[str] = set()
    for ir in proc.instructions():
        if ir.inst.is_call() and ir.target and ir.target[0] == "symbol":
            callee = ir.target[1]
            ir.target = ("symbol", f"__atomiw${callee}")
            redirected.add(callee)
    return redirected


def _append_internal_wrapper(anal_ir: IRProgram, callee: str,
                             saves: tuple[int, ...]) -> None:
    name = f"__atomiw${callee}"
    if anal_ir.find_proc(name) is not None:
        return
    # The internal wrapper cannot know each call site's argument count
    # (printf-style callees vary), so it forwards a generous fixed number
    # of stack-argument slots; extra slots copy harmless caller-frame
    # bytes.
    insts = wrapper_body(saves, target=("symbol", callee), copy_args=14)
    block = IRBlock(index=-1)
    block.insts = insts
    proc = IRProc(name=name, blocks=[block])
    block.proc = proc
    anal_ir.procs.append(proc)


# ---- wrapper code generation ---------------------------------------------------

def wrapper_body(saves: tuple[int, ...], *, target: tuple,
                 copy_args: int = 0,
                 target_relocs: list | None = None) -> list[IRInst]:
    """Build the instruction list of a wrapper routine.

    The wrapper saves its incoming ra plus ``saves``, copies any stack
    arguments down to its own outgoing area (``copy_args`` = total declared
    arguments), calls the target, restores, and returns.

    ``target`` is ("symbol", name) for a bsr, or ("absolute", name) to
    load the callee address via a ldah/lda pair carrying HI16/LO16
    relocations against ``name`` (used when the analysis unit lies beyond
    bsr reach).
    """
    from ..objfile.relocs import Relocation, RelocType
    from ..objfile.sections import TEXT

    out_slots = max(0, copy_args - 6)
    need_at = out_slots > 0
    save_list = list(saves)
    if need_at and R.AT not in save_list:
        save_list.append(R.AT)
    kind = target[0]
    if kind == "absolute" and R.PV not in save_list:
        save_list.append(R.PV)
    frame = 8 * (out_slots + len(save_list) + 1)
    frame = (frame + 15) & ~15
    ra_off = 8 * out_slots

    def mem(op, reg, disp):
        return IRInst(Instruction(op, ra=reg, rb=R.SP, disp=disp))

    insts: list[IRInst] = []
    insts.append(IRInst(Instruction(opcodes.LDA, ra=R.SP, rb=R.SP,
                                    disp=-frame)))
    insts.append(mem(opcodes.STQ, R.RA, ra_off))
    for i, reg in enumerate(save_list):
        insts.append(mem(opcodes.STQ, reg, ra_off + 8 + 8 * i))
    # Copy incoming stack arguments down to our outgoing area.
    for k in range(out_slots):
        insts.append(mem(opcodes.LDQ, R.AT, frame + 8 * k))
        insts.append(mem(opcodes.STQ, R.AT, 8 * k))
    if kind == "symbol":
        insts.append(IRInst(Instruction(opcodes.BSR, ra=R.RA),
                            target=("symbol", target[1])))
    else:
        hi = IRInst(Instruction(opcodes.LDAH, ra=R.PV, rb=R.ZERO))
        hi.relocs.append(Relocation(TEXT, 0, RelocType.HI16, target[1], 0))
        lo = IRInst(Instruction(opcodes.LDA, ra=R.PV, rb=R.PV))
        lo.relocs.append(Relocation(TEXT, 0, RelocType.LO16, target[1], 0))
        insts.extend([hi, lo])
        insts.append(IRInst(Instruction(opcodes.JSR, ra=R.RA, rb=R.PV)))
    for i, reg in enumerate(save_list):
        insts.append(mem(opcodes.LDQ, reg, ra_off + 8 + 8 * i))
    insts.append(mem(opcodes.LDQ, R.RA, ra_off))
    insts.append(IRInst(Instruction(opcodes.LDA, ra=R.SP, rb=R.SP,
                                    disp=frame)))
    insts.append(IRInst(Instruction(opcodes.RET, ra=R.ZERO, rb=R.RA)))
    return insts


def build_wrapper_proc(plan: ProcSavePlan, target_symbol: str,
                       far: bool) -> IRProc:
    """Create the wrapper IRProc for one analysis procedure."""
    target = ("absolute", target_symbol) if far \
        else ("symbol", target_symbol)
    insts = wrapper_body(plan.saves, target=target,
                         copy_args=plan.arg_count)
    block = IRBlock(index=-1)
    block.insts = insts
    proc = IRProc(name=plan.wrapper_symbol, blocks=[block])
    block.proc = proc
    return proc


# ---- O2: in-frame saves -------------------------------------------------------

def _inframe_applicable(proc: IRProc) -> bool:
    if proc.frame_size is None or proc.frame_outgoing is None:
        return False       # no frame metadata (hand-written assembly)
    if proc.frame_size == 0:
        # Frameless leaf routine: in-frame saves synthesize a fresh frame,
        # which is only safe when the routine never touches sp.
        return not any(R.SP in (ir.inst.defs() | ir.inst.uses())
                       for ir in proc.instructions())
    return True


def _transform_in_frame(proc: IRProc, saves: tuple[int, ...]) -> None:
    """Bump the analysis routine's frame and add saves/restores in place.

    Mirrors the paper: "The extra space is allocated in the analysis
    routine's stack frame.  This requires bumping the stack frame and
    fixing stack references in the analysis routines as needed."
    """
    if not saves:
        return
    extra = 8 * len(saves)
    extra = (extra + 15) & ~15
    frame = proc.frame_size
    outgoing = proc.frame_outgoing

    if frame == 0:
        _synthesize_frame(proc, saves, extra)
        return

    def save_seq():
        return [IRInst(Instruction(opcodes.STQ, ra=reg, rb=R.SP,
                                   disp=outgoing + 8 * i))
                for i, reg in enumerate(saves)]

    def restore_seq():
        return [IRInst(Instruction(opcodes.LDQ, ra=reg, rb=R.SP,
                                   disp=outgoing + 8 * i))
                for i, reg in enumerate(saves)]

    for block in proc.blocks:
        new_insts: list[IRInst] = []
        for ir in block.insts:
            inst = ir.inst
            is_sp_mem = (inst.op.format.value == "memory"
                         and inst.rb == R.SP)
            if inst.op is opcodes.LDA and inst.ra == R.SP \
                    and inst.rb == R.SP and inst.disp == -frame:
                inst.disp = -(frame + extra)
                new_insts.append(ir)
                new_insts.extend(save_seq())
                continue
            if inst.op is opcodes.LDA and inst.ra == R.SP \
                    and inst.rb == R.SP and inst.disp == frame:
                inst.disp = frame + extra
                new_insts.extend(restore_seq())
                new_insts.append(ir)
                continue
            if is_sp_mem and inst.disp >= outgoing:
                # Slots above the outgoing-argument area shifted by extra.
                inst.disp += extra
            new_insts.append(ir)
        block.insts = new_insts
    proc.frame_size = frame + extra


def _synthesize_frame(proc: IRProc, saves: tuple[int, ...],
                      extra: int) -> None:
    """Give a frameless leaf routine a frame just for its saves.

    Safe because the routine never references sp, so nothing needs
    fixing up; the prologue goes at entry and the restores before every
    return."""
    def save_seq():
        out = [IRInst(Instruction(opcodes.LDA, ra=R.SP, rb=R.SP,
                                  disp=-extra))]
        out += [IRInst(Instruction(opcodes.STQ, ra=reg, rb=R.SP,
                                   disp=8 * i))
                for i, reg in enumerate(saves)]
        return out

    def restore_seq():
        out = [IRInst(Instruction(opcodes.LDQ, ra=reg, rb=R.SP,
                                  disp=8 * i))
               for i, reg in enumerate(saves)]
        out.append(IRInst(Instruction(opcodes.LDA, ra=R.SP, rb=R.SP,
                                      disp=extra)))
        return out

    proc.blocks[0].insts[:0] = save_seq()
    for block in proc.blocks:
        new_insts: list[IRInst] = []
        for ir in block.insts:
            if ir.inst.is_ret():
                new_insts.extend(restore_seq())
            new_insts.append(ir)
        block.insts = new_insts
    proc.frame_size = extra
    proc.frame_outgoing = 0
