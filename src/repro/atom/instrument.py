"""The ATOM instrumenter: application + instrumentation + analysis -> one
instrumented executable.

This is the paper's second step (Figure 1): the custom tool — OM machinery
combined with the user's instrumentation routines — is applied to the
application, and the analysis routines are linked into the same address
space.  The final layout follows Figure 4:

    text_base:  [instrumented application text][wrappers][veneer]
                [analysis text]
                [analysis lita][analysis data][analysis bss, zero-filled]
                [instrumentation-time data (strings/arrays)]
                ...gap...
    data_base:  [application lita][data][bss]      <- UNMOVED
                [heap ->]
    stack:      below text_base, growing down      <- UNMOVED

Program data, heap and stack addresses are identical to the uninstrumented
run; program text addresses change but the static new->old map is recorded
and every ``InstPC``-style constant was materialized from original
addresses at instrumentation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import opcodes, registers as R
from ..isa.instruction import Instruction
from ..obs import TRACE
from ..objfile.linker import relocate_unit
from ..objfile.module import Module
from ..objfile.relocs import Relocation, RelocType
from ..objfile.sections import BSS, DATA, LITA, TEXT
from ..objfile.symtab import SymBind, Symbol
from ..om import build_ir, emit
from ..om.dataflow import Liveness
from ..om.opt import coalesce_snippets
from ..om.ir import IRBlock, IRInst, IRProc, IRProgram
from .api import AtomContext, AtomError
from .lowering import ANAL_PREFIX, ATOM_DATA_SYMBOL, AtomData, Lowerer
from .saves import OptLevel, SavePlans, build_wrapper_proc, compute_plans

VENEER_NAME = "__atom_veneer"

#: Text spans under this stay within bsr reach end to end.
_BSR_SPAN_LIMIT = 4 * 1024 * 1024


class LayoutError(AtomError):
    pass


@dataclass
class InstrumentStats:
    #: Distinct instrumentation points: program/proc/block/inst hook sites
    #: with at least one action attached.  A site with several actions is
    #: still one point (each action counts in ``calls_added``).
    points: int = 0
    #: Analysis-procedure calls spliced in, one per action.
    calls_added: int = 0
    snippet_insts: int = 0
    wrappers: int = 0
    save_set_sizes: dict[str, int] = field(default_factory=dict)
    #: O4: calls replaced by spliced analysis bodies.
    inlined_calls: int = 0
    #: O4: adjacent save/restore bracket pairs merged by the coalescer.
    coalesced_brackets: int = 0


@dataclass
class InstrumentResult:
    module: Module
    stats: InstrumentStats
    #: None when the result was rehydrated from the artifact cache —
    #: save plans are an instrumentation-time intermediate and are not
    #: persisted alongside the module bytes and stats.
    plans: SavePlans | None
    #: True when served from the on-disk artifact cache.
    cached: bool = False


def instrument_executable(app_exe: Module, instrument_fn, analysis_unit,
                          *, opt: OptLevel = OptLevel.O1,
                          heap_mode: str = "linked",
                          heap_offset: int = 0x10_0000,
                          tool_args: tuple[str, ...] = (),
                          force_far_calls: bool = False) -> InstrumentResult:
    """Instrument ``app_exe`` with a tool.

    ``instrument_fn(iargc, iargv, atom)`` is the tool's instrumentation
    routine; ``analysis_unit`` is a linked analysis module (see
    :func:`repro.mlc.build_analysis_unit`) or MLC source text.

    ``heap_mode`` selects the two-sbrk scheme: "linked" (default — both
    sbrks allocate from one kernel break, each continuing where the other
    stopped) or "partitioned" (the analysis heap starts ``heap_offset``
    bytes past the application heap base; as in the paper, nothing checks
    that the application heap does not grow into it).
    """
    if heap_mode not in ("linked", "partitioned"):
        raise AtomError(f"unknown heap mode {heap_mode!r}")

    # Defensive copies: neither input module is mutated.
    app = Module.from_bytes(app_exe.to_bytes())
    anal = _as_analysis_module(analysis_unit)

    anal_ir = build_ir(anal)
    app_ir = build_ir(app)

    # ---- step 1: run the user's instrumentation routines ----------------
    with TRACE.span("instrument.protos", "instrument", opt=opt.name):
        ctx = AtomContext(app_ir)
        argv = ("atom",) + tuple(tool_args)
        instrument_fn(len(argv), argv, ctx)

    stats = InstrumentStats()
    with TRACE.span("instrument.plan", "instrument") as sp:
        targets = _collect_targets(app_ir, ctx, stats)
        sp.add(points=stats.points, calls=stats.calls_added)

    # ---- step 2: save plans + analysis-unit transformation ----------------
    with TRACE.span("instrument.saves", "instrument") as sp:
        no_inline = frozenset(
            name for name in targets if ctx.protos[name].noinline)
        plans = compute_plans(anal_ir, targets, opt, no_inline=no_inline)
        for name, plan in plans.plans.items():
            stats.save_set_sizes[name] = len(plan.saves)
        anal_module = emit(anal_ir).module
        sp.add(procs=len(plans.plans))

    # ---- decide call strategy (bsr vs jsr to the analysis unit) ------------
    anal_text_size = len(anal_module.section(TEXT).data)
    inline_worst = max((len(p.body) for p in plans.plans.values()
                        if p.mode == "inlined"), default=0)
    worst_app = 4 * app_ir.inst_count() \
        + (64 + 4 * inline_worst) * max(stats.calls_added, 1) + 4096
    in_bsr_range = (worst_app + anal_text_size) < _BSR_SPAN_LIMIT
    if force_far_calls:
        # Testing hook: exercise the paper's "load the procedure value and
        # jsr" path without building a 4 MB application.
        in_bsr_range = False

    # ---- step 3: lower actions into snippets --------------------------------
    lowerer = Lowerer(plans=plans, data=AtomData(),
                      analysis_in_bsr_range=in_bsr_range)
    liveness = {}
    if opt >= OptLevel.O3:
        with TRACE.span("om.liveness", "om") as sp:
            liveness = {p.name: Liveness(p) for p in app_ir.procs}
            sp.add(procs=len(liveness))
    with TRACE.span("instrument.lowering", "instrument") as sp:
        _splice_program_hooks(app_ir, lowerer)
        for proc in app_ir.procs:
            _splice_proc(proc, lowerer,
                         liveness.get(proc.name) if opt >= OptLevel.O3
                         else None, stats)
        stats.inlined_calls = lowerer.inlined_calls
        if opt >= OptLevel.O4:
            stats.coalesced_brackets = coalesce_snippets(app_ir)

        # ---- wrappers and the veneer --------------------------------------
        has_libc_init = anal_module.symtab.get("__libc_init") is not None
        for name in sorted(plans.plans):
            plan = plans.plan(name)
            if plan.mode == "wrapper":
                app_ir.procs.append(build_wrapper_proc(
                    plan, ANAL_PREFIX + name, far=not in_bsr_range))
                stats.wrappers += 1
        app_ir.procs.append(_build_veneer(app_ir, app, lowerer,
                                          has_libc_init, in_bsr_range))
        sp.add(wrappers=stats.wrappers)

    # ---- layout: place the analysis unit in the gap ------------------------------
    with TRACE.span("instrument.layout", "instrument") as sp:
        text_base = app.section(TEXT).vaddr
        app_text_size = 4 * app_ir.inst_count()
        pad = (-app_text_size) % 16
        anal_text_base = text_base + app_text_size + pad
        anal_data_base = anal_text_base + anal_text_size + \
            ((-anal_text_size) % 16)
        data_vaddrs = {name: anal_module.section(name).vaddr
                       for name in (LITA, DATA, BSS)}
        relocate_unit(anal_module, anal_text_base, anal_data_base)
        if any(p.mode == "inlined" for p in plans.plans.values()):
            # Inline templates encode reloc-free gp-relative displacements
            # to analysis data; those are only invariant when every data
            # segment shifted by one common delta.
            deltas = {anal_module.section(name).vaddr - vaddr
                      for name, vaddr in data_vaddrs.items()
                      if anal_module.section(name).size}
            if len(deltas) > 1:
                raise LayoutError(
                    f"analysis data segments rebased by unequal deltas "
                    f"{sorted(deltas)}; O4 inline templates assume a "
                    f"rigid data layout")

        anal_bss = anal_module.section(BSS)
        atomdata_base = (anal_bss.vaddr + anal_bss.size + 15) & ~15
        atom_blob = lowerer.data.blob()
        gap_end = app.section(LITA).vaddr
        if atomdata_base + len(atom_blob) > gap_end:
            raise LayoutError(
                f"analysis unit does not fit in the text-data gap "
                f"(needs through {atomdata_base + len(atom_blob):#x}, "
                f"application data starts at {gap_end:#x})")
        sp.add(app_text=app_text_size, anal_text=anal_text_size,
               atom_data=len(atom_blob))

    # ---- partition the symbol name space and resolve -----------------------------
    for sym in anal_module.symtab:
        if sym.bind is SymBind.GLOBAL and sym.defined:
            injected = Symbol(name=ANAL_PREFIX + sym.name, is_abs=True,
                              value=sym.value, bind=SymBind.GLOBAL)
            if injected.name in app.symtab:
                raise AtomError(
                    f"symbol name collision: {injected.name!r}")
            app.symtab.add(injected)
    app.symtab.add(Symbol(name=ATOM_DATA_SYMBOL, is_abs=True,
                          value=atomdata_base, bind=SymBind.GLOBAL))

    emitted = emit(app_ir, text_base=text_base)
    final = emitted.module
    if final.section(TEXT).vaddr + len(final.section(TEXT).data) \
            != anal_text_base - pad:
        raise LayoutError("instrumented text size mismatch")  # paranoia

    # ---- stitch the final executable ----------------------------------------------
    final.section(TEXT).data += b"\x00" * pad
    final.section(TEXT).data += bytes(anal_module.section(TEXT).data)
    for name in (LITA, DATA):
        sec = anal_module.section(name)
        if sec.size:
            final.extra_segments.append(
                (f"anal{name}", sec.vaddr, bytes(sec.data)))
    if anal_bss.size:
        # Paper: "the uninitialized data of the analysis routines is
        # converted to initialized data by initializing it with zero."
        final.extra_segments.append(
            ("anal.bss", anal_bss.vaddr, b"\x00" * anal_bss.size))
    if atom_blob:
        final.extra_segments.append(
            ("atom.data", atomdata_base, atom_blob))

    final.entry = final.addr_of(VENEER_NAME)
    final.analysis_gp = anal_module.gp_value
    final.meta["atom:anal_text_base"] = anal_text_base
    final.meta["atom:anal_text_size"] = anal_text_size
    final.meta["atom:anal_data_base"] = anal_data_base
    final.meta["atom:atomdata_base"] = atomdata_base
    final.meta["atom:opt_level"] = int(opt)
    final.meta["atom:heap_partitioned"] = int(heap_mode == "partitioned")

    if heap_mode == "partitioned":
        _patch_partitioned_heap(final, anal_module, app, heap_offset)

    stats.snippet_insts = app_ir.inst_count() - _orig_count(app_ir)
    return InstrumentResult(module=final, stats=stats, plans=plans)


def _as_analysis_module(analysis_unit) -> Module:
    if isinstance(analysis_unit, Module):
        return Module.from_bytes(analysis_unit.to_bytes())
    from ..mlc import build_analysis_unit
    if isinstance(analysis_unit, str):
        return build_analysis_unit([analysis_unit])
    return build_analysis_unit(list(analysis_unit))


def _orig_count(app_ir: IRProgram) -> int:
    return sum(1 for ir in app_ir.instructions() if ir.orig_pc is not None)


def _collect_targets(app_ir: IRProgram, ctx: AtomContext,
                     stats: InstrumentStats) -> dict[str, int]:
    """Every analysis procedure referenced by any action, with arg counts."""
    targets: dict[str, int] = {}
    seen_sites: set[int] = set()

    def note(actions):
        # One point per distinct non-empty action list: hook sites can
        # alias the same list (and nothing stops a caller noting a site
        # twice), which must not inflate the point count.
        if actions and id(actions) not in seen_sites:
            seen_sites.add(id(actions))
            stats.points += 1
        for action in actions:
            stats.calls_added += 1
            proto = ctx.protos[action.proc_name]
            targets[action.proc_name] = proto.arg_count

    note(app_ir.before)
    note(app_ir.after)
    for proc in app_ir.procs:
        note(proc.before)
        note(proc.after)
        for block in proc.blocks:
            note(block.before)
            note(block.after)
            for ir in block.insts:
                note(ir.before)
                note(ir.after)
    return targets


# ---- splicing --------------------------------------------------------------

def _splice_proc(proc: IRProc, lowerer: Lowerer, liveness, stats) -> None:
    for block in proc.blocks:
        _splice_block(block, lowerer, liveness)
    # Block-level hooks.
    for block in proc.blocks:
        if block.before:
            live = liveness.live_in[block.index] if liveness else None
            block.insts[:0] = lowerer.snippet(block.before, None, live)
    # Procedure-level hooks: before -> entry; after -> before each ret.
    if proc.after:
        for block in proc.blocks:
            for idx in range(len(block.insts) - 1, -1, -1):
                if block.insts[idx].inst.is_ret():
                    # Registers live just before the ret — i.e. live at
                    # procedure exit.  (Indexing against the spliced
                    # instruction list is fine: live_before walks back
                    # from the block's current end, and earlier splices
                    # for this block all landed before the ret.)
                    live = liveness.live_before(block, idx) \
                        if liveness else None
                    block.insts[idx:idx] = lowerer.snippet(
                        proc.after, None, live)
    if proc.before:
        entry = proc.blocks[0]
        live = liveness.live_in[entry.index] if liveness else None
        entry.insts[:0] = lowerer.snippet(proc.before, None, live)


def _splice_block(block: IRBlock, lowerer: Lowerer, liveness) -> None:
    has_inst_hooks = any(ir.before or ir.after for ir in block.insts)
    has_block_after = bool(block.after)
    if not has_inst_hooks and not has_block_after:
        return
    new_insts: list[IRInst] = []
    for idx, ir in enumerate(block.insts):
        if ir.before:
            live = liveness.live_before(block, idx) if liveness else None
            new_insts.extend(lowerer.snippet(ir.before, ir, live))
        new_insts.append(ir)
        if ir.after:
            live = liveness.live_after(block, idx) if liveness else None
            new_insts.extend(lowerer.snippet(ir.after, ir, live))
    if has_block_after:
        live = liveness.live_out[block.index] if liveness else None
        snippet = lowerer.snippet(block.after, None, live)
        if new_insts and new_insts[-1].inst.ends_block():
            new_insts[-1:-1] = snippet
        else:
            new_insts.extend(snippet)
    block.insts = new_insts


def _splice_program_hooks(app_ir: IRProgram, lowerer: Lowerer) -> None:
    """ProgramAfter calls run when the application terminates: ATOM hooks
    the single termination point, the _exit procedure."""
    if not app_ir.after:
        return
    exit_proc = app_ir.find_proc("_exit")
    if exit_proc is None:
        raise AtomError(
            "ProgramAfter requires the application to terminate through "
            "_exit, but no _exit procedure was found")
    snippet = lowerer.snippet(app_ir.after, None)
    exit_proc.blocks[0].insts[:0] = snippet
    app_ir.after = []


def _build_veneer(app_ir: IRProgram, app: Module, lowerer: Lowerer,
                  has_libc_init: bool, in_bsr_range: bool) -> IRProc:
    """New entry point: initialize the analysis libc, run ProgramBefore
    calls, then transfer to the original entry."""
    entry_proc = None
    for proc in app_ir.procs:
        if proc.orig_addr == app.entry:
            entry_proc = proc
            break
    if entry_proc is None:
        raise AtomError("cannot locate the application entry procedure")

    insts: list[IRInst] = []

    def mov(src, dst):
        insts.append(IRInst(Instruction(opcodes.BIS, ra=src, rb=R.ZERO,
                                        rc=dst)))

    mov(R.A0, R.S0)
    mov(R.A1, R.S1)
    if has_libc_init:
        target = ANAL_PREFIX + "__libc_init"
        if in_bsr_range:
            insts.append(IRInst(Instruction(opcodes.BSR, ra=R.RA),
                                target=("symbol", target)))
        else:
            hi = IRInst(Instruction(opcodes.LDAH, ra=R.PV, rb=R.ZERO))
            hi.relocs.append(Relocation(TEXT, 0, RelocType.HI16, target, 0))
            lo = IRInst(Instruction(opcodes.LDA, ra=R.PV, rb=R.PV))
            lo.relocs.append(Relocation(TEXT, 0, RelocType.LO16, target, 0))
            insts.extend([hi, lo])
            insts.append(IRInst(Instruction(opcodes.JSR, ra=R.RA,
                                            rb=R.PV)))
    insts.extend(lowerer.snippet(app_ir.before, None))
    app_ir.before = []
    mov(R.S0, R.A0)
    mov(R.S1, R.A1)
    insts.append(IRInst(Instruction(opcodes.BR, ra=R.ZERO),
                        target=("symbol", entry_proc.name)))

    block = IRBlock(index=-2)
    block.insts = insts
    proc = IRProc(name=VENEER_NAME, blocks=[block])
    block.proc = proc
    return proc


def _patch_partitioned_heap(final: Module, anal_module: Module,
                            app: Module, heap_offset: int) -> None:
    """Route the analysis sbrk to the second break pointer.

    Patches the *initial values* of the analysis libc's __sbrk_channel and
    __sbrk2_base globals in the analysis data segment — exactly the
    "ATOM modifies the sbrk in analysis routines" step of the paper.
    """
    channel = anal_module.symtab.get("__sbrk_channel")
    base = anal_module.symtab.get("__sbrk2_base")
    if channel is None or base is None or not channel.defined:
        raise AtomError("partitioned heap requires the analysis unit to "
                        "link the standard sbrk (libc)")
    end_sym = app.symtab.get("__end")
    app_heap_base = (end_sym.value + 7) & ~7 if end_sym else 0
    heap2_base = app_heap_base + heap_offset

    data_sec = anal_module.section(DATA)
    patched = []
    for name, vaddr, blob in final.extra_segments:
        if name == f"anal{DATA}":
            blob = bytearray(blob)
            for sym, value in ((channel, 1), (base, heap2_base)):
                off = sym.value - data_sec.vaddr
                blob[off:off + 8] = value.to_bytes(8, "little")
            blob = bytes(blob)
        patched.append((name, vaddr, blob))
    final.extra_segments = patched
    final.meta["atom:heap2_base"] = heap2_base
