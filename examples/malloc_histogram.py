#!/usr/bin/env python3
"""Dynamic-memory recording with the partitioned heap.

The paper's malloc tool plus its subtlest implementation detail
(Section 4): when the analysis routines themselves allocate memory *and*
the tool needs the application's heap addresses to be exactly what they
would have been uninstrumented, ATOM partitions the heap — the
application's sbrk keeps its original base, the analysis sbrk starts at a
user-chosen offset, and (faithfully to the paper) nothing checks that the
two never collide.

This example records every allocation's size *and address* and verifies
the addresses match the uninstrumented run bit for bit.
"""

from repro.atom import ProcAfter, ProcBefore, ProgramAfter, instrument_executable
from repro.isa import registers as R
from repro.machine import run_module
from repro.mlc import build_analysis_unit, build_executable

APPLICATION = r"""
struct Node { long v; struct Node *next; };

int main() {
    struct Node *head = 0;
    long i;
    char *blobs[6];
    for (i = 0; i < 40; i++) {
        struct Node *n = (struct Node *)malloc(sizeof(struct Node));
        n->v = i;
        n->next = head;
        head = n;
    }
    for (i = 0; i < 6; i++) blobs[i] = (char *)malloc(100 << i);
    printf("head=%p blob0=%p blob5=%p\n", head, blobs[0], blobs[5]);
    return 0;
}
"""

# The analysis allocates its own records on the analysis heap.
ANALYSIS = r"""
struct Record { long size; long addr; struct Record *next; };
struct Record *log;
long pending_size;
long calls;

void BeforeMalloc(long size) {
    pending_size = size;
}

void AfterMalloc(long result) {
    struct Record *r = (struct Record *)malloc(sizeof(struct Record));
    r->size = pending_size;
    r->addr = result;
    r->next = log;
    log = r;
    calls++;
}

void Report(void) {
    FILE *f = fopen("mallocs.out", "w");
    struct Record *r;
    fprintf(f, "calls %d\n", calls);
    for (r = log; r; r = r->next) {
        fprintf(f, "%d @ 0x%lx\n", r->size, r->addr);
    }
    fclose(f);
}
"""


def Instrument(iargc, iargv, atom):
    atom.AddCallProto("BeforeMalloc(REGV)")
    atom.AddCallProto("AfterMalloc(REGV)")
    atom.AddCallProto("Report()")
    proc = atom.GetNamedProc("malloc")
    atom.AddCallProc(proc, ProcBefore, "BeforeMalloc", R.A0)  # size in a0
    atom.AddCallProc(proc, ProcAfter, "AfterMalloc", R.V0)    # result in v0
    atom.AddCallProgram(ProgramAfter, "Report")


def main() -> None:
    app = build_executable([APPLICATION], name="lists")
    base = run_module(app)
    print("uninstrumented:", base.stdout.decode().strip())

    analysis = build_analysis_unit([ANALYSIS])
    for mode in ("linked", "partitioned"):
        result = instrument_executable(app, Instrument, analysis,
                                       heap_mode=mode,
                                       heap_offset=0x20_0000)
        out = run_module(result.module)
        same = out.stdout == base.stdout
        print(f"\n-- heap mode: {mode} --")
        print("instrumented:  ", out.stdout.decode().strip())
        print("app heap addresses identical to uninstrumented run:",
              same)
        lines = out.files["mallocs.out"].decode().splitlines()
        print(f"{lines[0]} recorded; first three:")
        for line in lines[1:4]:
            print("   ", line)
        if mode == "linked":
            print("(linked sbrks: analysis records displaced the app's "
                  "allocations)")
        else:
            assert same, "partitioned mode must preserve heap addresses"
            print("(partitioned: analysis heap starts at +0x200000, the "
                  "app's is pristine)")


if __name__ == "__main__":
    main()
