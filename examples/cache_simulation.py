#!/usr/bin/env python3
"""Cache simulation: sweep a direct-mapped cache over blocking factors.

The paper's intro motivates ATOM with architects evaluating memory
hierarchies.  This example instruments a matrix-multiply kernel with a
*parameterized* cache tool (line size passed as a tool argument — the
``atom prog inst.py anal.mlc -- args`` path) and shows how the miss rate
responds to loop blocking, all without ever producing an address trace.
"""

from repro.atom import (EffAddrValue, InstBefore, InstTypeMemRef,
                        ProgramAfter, ProgramBefore, instrument_executable)
from repro.machine import run_module
from repro.mlc import build_analysis_unit, build_executable

KERNEL = r"""
// The pads stagger the arrays' cache-index alignment: without them every
// array base maps to the same direct-mapped line and conflict misses
// drown the locality effects this study is about.
long A[32][32];
long padA[37];
long B[32][32];
long padB[53];
long C[32][32];
long n = 32;

void plain(void) {
    long i, j, k;
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++) {
            long acc = 0;
            for (k = 0; k < n; k++) acc += A[i][k] * B[k][j];
            C[i][j] = acc;
        }
}

void blocked(long bs) {
    long i0, j0, k0, i, j, k;
    for (i0 = 0; i0 < n; i0 += bs)
        for (k0 = 0; k0 < n; k0 += bs)
            for (j0 = 0; j0 < n; j0 += bs)
                for (i = i0; i < i0 + bs && i < n; i++)
                    for (k = k0; k < k0 + bs && k < n; k++)
                        for (j = j0; j < j0 + bs && j < n; j++)
                            C[i][j] += A[i][k] * B[k][j];
}

int main(int argc, char **argv) {
    long i, j, check = 0;
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++) {
            A[i][j] = (i + j) % 7;
            B[i][j] = (i * j) % 5;
            C[i][j] = 0;
        }
    if (argc > 1 && argv[1][0] == 'b') blocked(8);
    else plain();
    for (i = 0; i < n; i++) check += C[i][i];
    printf("check=%d\n", check);
    return 0;
}
"""

CACHE_ANALYSIS = r"""
long tags[4096];
long valid[4096];
long line_shift;
long index_mask;
long refs;
long misses;

void CacheInit(long cache_bytes, long line_bytes) {
    long lines = cache_bytes / line_bytes;
    line_shift = 0;
    while ((1 << line_shift) < line_bytes) line_shift++;
    index_mask = lines - 1;
}

void Reference(long addr) {
    long line = addr >> line_shift;
    long index = line & index_mask;
    refs++;
    if (!valid[index] || tags[index] != line) {
        misses++;
        tags[index] = line;
        valid[index] = 1;
    }
}

void CacheReport(void) {
    FILE *f = fopen("cache.out", "w");
    fprintf(f, "%d %d\n", refs, misses);
    fclose(f);
}
"""


def make_instrument(cache_bytes: int, line_bytes: int):
    def Instrument(iargc, iargv, atom):
        atom.AddCallProto("CacheInit(long, long)")
        atom.AddCallProto("Reference(VALUE)")
        atom.AddCallProto("CacheReport()")
        atom.AddCallProgram(ProgramBefore, "CacheInit", cache_bytes,
                            line_bytes)
        for proc in atom.procs():
            for inst in atom.insts(proc):
                if atom.IsInstType(inst, InstTypeMemRef):
                    atom.AddCallInst(inst, InstBefore, "Reference",
                                     EffAddrValue)
        atom.AddCallProgram(ProgramAfter, "CacheReport")
    return Instrument


def main() -> None:
    app = build_executable([KERNEL], name="mm")
    analysis = build_analysis_unit([CACHE_ANALYSIS])

    print(f"{'variant':10s} {'cache':>8s} {'line':>5s} "
          f"{'refs':>9s} {'misses':>8s} {'miss%':>6s}")
    misses_at = {}
    for variant, args in (("plain", ()), ("blocked", ("b",))):
        for cache_bytes, line_bytes in ((1024, 32), (2048, 32),
                                        (8192, 32)):
            tool = make_instrument(cache_bytes, line_bytes)
            result = instrument_executable(app, tool, analysis)
            out = run_module(result.module, args=args)
            refs, misses = map(int, out.files["cache.out"].split())
            misses_at[(variant, cache_bytes)] = misses
            print(f"{variant:10s} {cache_bytes:>8d} {line_bytes:>5d} "
                  f"{refs:>9d} {misses:>8d} "
                  f"{100.0 * misses / refs:>5.1f}%")
    print("\nWhen the matrices dwarf the cache, the blocked variant "
          "misses less\ndespite touching memory more; bigger caches "
          "shrink misses for both.")
    assert misses_at[("blocked", 1024)] < misses_at[("plain", 1024)]
    assert misses_at[("plain", 8192)] < misses_at[("plain", 1024)]


if __name__ == "__main__":
    main()
