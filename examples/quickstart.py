#!/usr/bin/env python3
"""Quickstart: the paper's branch-counting tool, Figures 2 and 3.

This walks ATOM's two-step process end to end:

1. a *custom tool* = ATOM's machinery + your instrumentation routines
   (the ``Instrument`` function below, a near line-for-line port of the
   paper's Figure 2);
2. the custom tool applied to an application + your analysis routines
   (the MLC code below, a near line-for-line port of Figure 3) yields an
   instrumented executable;

Running that executable produces ``btaken.out`` as a side effect of the
program's normal execution — no traces, no postprocessing pass.
"""

from repro.atom import (BrCondValue, InstBefore, InstTypeCondBr,
                        ProgramAfter, ProgramBefore, instrument_executable)
from repro.machine import run_module
from repro.mlc import build_analysis_unit, build_executable

# ---- the application under study -------------------------------------------

APPLICATION = r"""
long classify(long x) {
    if (x % 15 == 0) return 3;
    if (x % 3 == 0) return 1;
    if (x % 5 == 0) return 2;
    return 0;
}

int main() {
    long i;
    long counts[4];
    for (i = 0; i < 4; i++) counts[i] = 0;
    for (i = 1; i <= 100; i++) counts[classify(i)]++;
    printf("plain=%d fizz=%d buzz=%d fizzbuzz=%d\n",
           counts[0], counts[1], counts[2], counts[3]);
    return 0;
}
"""

# ---- Figure 3: the analysis routines (MLC, the reproduction's C) -------------

ANALYSIS_ROUTINES = r"""
FILE *file;
struct BranchInfo {
    long taken;
    long notTaken;
};
struct BranchInfo *bstats;

void OpenFile(long n) {
    bstats = (struct BranchInfo *) calloc(n, sizeof(struct BranchInfo));
    file = fopen("btaken.out", "w");
    fprintf(file, "PC\tTaken\tNot Taken\n");
}

void CondBranch(long n, long taken) {
    if (taken) bstats[n].taken++;
    else bstats[n].notTaken++;
}

void PrintBranch(long n, long pc) {
    fprintf(file, "0x%lx\t%d\t%d\n", pc, bstats[n].taken,
            bstats[n].notTaken);
}

void CloseFile(void) {
    fclose(file);
}
"""


# ---- Figure 2: the instrumentation routines ------------------------------------

def Instrument(iargc, iargv, atom):
    atom.AddCallProto("OpenFile(int)")
    atom.AddCallProto("CondBranch(int, VALUE)")
    atom.AddCallProto("PrintBranch(int, long)")
    atom.AddCallProto("CloseFile()")
    nbranch = 0
    p = atom.GetFirstProc()
    while p is not None:
        b = atom.GetFirstBlock(p)
        while b is not None:
            inst = atom.GetLastInst(b)
            if inst is not None and atom.IsInstType(inst, InstTypeCondBr):
                atom.AddCallInst(inst, InstBefore, "CondBranch",
                                 nbranch, BrCondValue)
                atom.AddCallProgram(ProgramAfter, "PrintBranch",
                                    nbranch, atom.InstPC(inst))
                nbranch += 1
            b = atom.GetNextBlock(b)
        p = atom.GetNextProc(p)
    atom.AddCallProgram(ProgramBefore, "OpenFile", nbranch)
    atom.AddCallProgram(ProgramAfter, "CloseFile")


def main() -> None:
    print("== step 0: compile and link the application ==")
    app = build_executable([APPLICATION], name="fizzbuzz")
    base = run_module(app)
    print(f"   uninstrumented: {base.stdout.decode().strip()}  "
          f"({base.cycles} cycles)")

    print("== step 1: build the custom tool "
          "(ATOM machinery + instrumentation routines) ==")
    analysis = build_analysis_unit([ANALYSIS_ROUTINES])

    print("== step 2: apply it to the application ==")
    result = instrument_executable(app, Instrument, analysis)
    stats = result.stats
    print(f"   {stats.points} points instrumented, "
          f"{stats.calls_added} calls added, "
          f"{stats.wrappers} wrappers generated")

    print("== run the instrumented executable ==")
    out = run_module(result.module)
    assert out.stdout == base.stdout, "application behaviour must not change"
    print(f"   instrumented:   {out.stdout.decode().strip()}  "
          f"({out.cycles} cycles, "
          f"{out.cycles / base.cycles:.2f}x the uninstrumented run)")

    print("== btaken.out (written by the analysis routines) ==")
    lines = out.files["btaken.out"].decode().splitlines()
    for line in lines[:12]:
        print("   " + line)
    if len(lines) > 12:
        print(f"   ... {len(lines) - 12} more branches")


if __name__ == "__main__":
    main()
