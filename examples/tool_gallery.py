#!/usr/bin/env python3
"""Tool gallery: run all eleven paper tools over one workload.

Applies every tool from the paper's Figure 5 to a workload program and
prints the head of each analysis report plus the cycle overhead — a
miniature of the paper's whole evaluation in one command.

Usage: python examples/tool_gallery.py [workload-name]
"""

import sys

from repro.eval import apply_tool, run_instrumented, run_uninstrumented
from repro.tools import all_tools
from repro.workloads import WORKLOAD_NAMES, build_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "hashtab"
    if name not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {name!r}; "
                         f"choose from {', '.join(WORKLOAD_NAMES)}")
    app = build_workload(name)
    base = run_uninstrumented(app)
    print(f"workload {name}: {base.stdout.decode().strip()}  "
          f"[{base.inst_count} insts, {base.cycles} cycles]\n")

    for tool in all_tools():
        result = apply_tool(app, tool)
        out = run_instrumented(result)
        assert out.stdout == base.stdout, tool.name
        ratio = out.cycles / base.cycles
        print(f"=== {tool.name}: {tool.description} "
              f"[{ratio:.2f}x, {result.stats.calls_added} calls added] ===")
        lines = out.files[tool.output_file].decode().splitlines()
        for line in lines[:5]:
            print("   " + line)
        if len(lines) > 5:
            print(f"   ... {len(lines) - 5} more lines")
        print()


if __name__ == "__main__":
    main()
