#!/usr/bin/env python3
"""Where does an instrumented run's time go?  A guest-profiler tour.

The paper sells ATOM on low, *predictable* overhead — but a tool writer
staring at a 2x slowdown still needs to know which part of the
machinery costs: the register brackets around each point, the spliced
analysis bodies (O4), or the analysis routines themselves.  This
walkthrough profiles the prof tool at O0 and O4 with the deterministic
PC sampler and reads the answer off the pristine-attribution buckets,
then drills to line level with the annotated disassembly.

Everything here is deterministic: samples fire every N *retired
instructions*, so re-running this script produces byte-identical
artifacts (diff them across your own changes).
"""

import tempfile
from pathlib import Path

from repro.atom import OptLevel
from repro.eval.runner import apply_tool, run_instrumented, run_uninstrumented
from repro.obs import runtime
from repro.obs.annotate import render_annotated
from repro.tools import get_tool
from repro.workloads import build_workload

INTERVAL = 997          # prime, so samples don't alias loop strides


def profile(app, tool, opt):
    inst = apply_tool(app, tool, opt=opt)
    sampler = runtime.StackSampler(INTERVAL)
    run_instrumented(inst, sampler=sampler)
    return inst, runtime.profile_doc(sampler, inst.module)


def main():
    app = build_workload("fib")
    tool = get_tool("prof")
    base = run_uninstrumented(app)
    print(f"uninstrumented fib: {base.cycles:,} cycles")

    # -- 1. The pristine/overhead split, O0 vs O4 -------------------------
    docs = {}
    for opt in (OptLevel.O0, OptLevel.O4):
        inst, doc = profile(app, tool, opt)
        docs[opt] = (inst, doc)
        split = runtime.pristine_split(doc)
        print(f"\nprof@{opt.name}: {doc['cycles']:,} cycles "
              f"({doc['samples']} samples)")
        print(f"  pristine {split['pristine']:,} cycles — the original "
              f"program, unchanged")
        print(f"  overhead {split['overhead']:,} cycles, by bucket:")
        for bucket in ("bracket", "splice", "analysis"):
            row = doc["buckets"].get(bucket, {})
            if row.get("samples"):
                print(f"    {bucket:<9} {row['cycles']:>8,} cycles "
                      f"({100 * row['cycle_share']:.1f}%)")

    # The headline: O4 moves overhead out of per-point call machinery
    # (bracket + analysis-routine calls) into inlined splices, and
    # shrinks it overall — while the pristine bucket stays the
    # program's own cost at every level.
    o0_doc, o4_doc = docs[OptLevel.O0][1], docs[OptLevel.O4][1]
    print(f"\nO0 overhead {runtime.pristine_split(o0_doc)['overhead']:,} "
          f"-> O4 overhead {runtime.pristine_split(o4_doc)['overhead']:,} "
          f"cycles")

    # -- 2. Flamegraph stacks --------------------------------------------
    # Collapsed lines are flamegraph.pl / speedscope input.  ATOM's
    # overhead appears as [bracket] / [splice:<name>] leaves under the
    # *original* procedures that pay for them.
    inst, doc = docs[OptLevel.O4]
    atom_leaves = sorted({stack.rsplit(";", 1)[-1]
                          for stack in doc["collapsed"]
                          if "[" in stack.rsplit(";", 1)[-1]})
    print(f"\nflamegraph: {len(doc['collapsed'])} distinct stacks; "
          f"ATOM-overhead leaf frames: {', '.join(atom_leaves)}")

    with tempfile.TemporaryDirectory() as tmp:
        out = runtime.write_collapsed(doc, Path(tmp) / "prof.collapsed")
        lines = out.read_text().splitlines()
        print(f"  wrote {len(lines)} collapsed lines, e.g.:")
        for line in lines[:3]:
            print(f"    {line}")

    # -- 3. Line level: annotated disassembly ----------------------------
    # Margin: "samples  cycle%  mark", with inserted code marked
    # b/g/i/a (bracket, glue, splice, analysis).
    hot = next(row["name"] for row in doc["procs"]
               if row["bucket"] == "orig")
    text = render_annotated(inst.module, doc, procs=[hot])
    print(f"\nannotated disassembly around the hottest original "
          f"procedure ({hot}):")
    shown = 0
    for line in text.splitlines():
        if line[:8].strip().isdigit():
            print(f"  {line}")
            shown += 1
            if shown == 6:
                break

    # -- 4. Determinism, demonstrated ------------------------------------
    _, again = profile(app, tool, OptLevel.O4)
    print(f"\nre-profiled O4 run identical: {again == doc}")


if __name__ == "__main__":
    main()
